"""Cross-engine equivalence and behaviour of the grading backends.

The fused engine is the default oracle, so it gets adversarial coverage:
property-style randomized cross-checks of every registered engine (and
both fused execution paths) against the bigint reference and the serial
replay, plus regression tests for the early exit and the session caches.
"""

import random

import pytest

from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.netlist.builder import NetlistBuilder
from repro.sim.backends import available_engines, get_engine
from repro.sim.backends.fused import FusedEngine
from repro.sim.cache import compiled_for, golden_for
from repro.sim.cycle import replay_single_fault, run_golden
from repro.sim.parallel import grade_faults
from repro.sim.vectors import constant_testbench, random_testbench
from tests.conftest import build_shift_register


def random_netlist(rng: random.Random):
    """A random feed-forward synchronous circuit.

    Gates only consume already-available nets, so the result is always
    loop-free; flop D inputs and primary outputs are wired up at the end
    from the full net pool.
    """
    builder = NetlistBuilder(f"rand{rng.randrange(1 << 30)}")
    num_inputs = rng.randint(1, 3)
    num_flops = rng.randint(2, 6)
    inputs = [builder.input(f"in{i}") for i in range(num_inputs)]
    d_nets = [builder.netlist.fresh_net(f"d{i}") for i in range(num_flops)]
    q_nets = [
        builder.dff(d_nets[i], q=f"q{i}", init=rng.randint(0, 1), name=f"ff{i}")
        for i in range(num_flops)
    ]
    pool = inputs + q_nets
    for _ in range(rng.randint(3, 14)):
        kind = rng.choice(
            ["and", "or", "xor", "nand", "nor", "inv", "buf", "mux", "xnor"]
        )
        if kind == "inv":
            net = builder.inv(rng.choice(pool))
        elif kind == "buf":
            net = builder.buf(rng.choice(pool))
        elif kind == "mux":
            net = builder.mux(
                rng.choice(pool), rng.choice(pool), rng.choice(pool)
            )
        elif kind == "xnor":
            net = builder.xnor_(rng.choice(pool), rng.choice(pool))
        else:
            arity = rng.randint(2, 4)
            nets = [rng.choice(pool) for _ in range(arity)]
            net = getattr(builder, kind + "_")(*nets)
        pool.append(net)
    for d_net in d_nets:
        builder.buf(rng.choice(pool), out=d_net)
    for index in range(rng.randint(1, 3)):
        builder.output_net(f"out{index}", rng.choice(pool))
    return builder.build(allow_dangling=True)


def random_fault_list(rng: random.Random, num_flops: int, num_cycles: int):
    """Random faults: arbitrary order, duplicates allowed."""
    count = rng.randint(1, 80)
    return [
        SeuFault(
            cycle=rng.randrange(num_cycles), flop_index=rng.randrange(num_flops)
        )
        for _ in range(count)
    ]


class TestEngineRegistry:
    def test_builtin_engines_registered(self):
        names = available_engines()
        assert {"bigint", "fused", "numpy"} <= set(names)

    def test_get_engine_unknown_name(self):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError, match="backend"):
            get_engine("quantum")

    def test_engines_are_singletons(self):
        assert get_engine("fused") is get_engine("fused")


class TestPropertyCrossCheck:
    """Random circuits x random fault lists: every engine must agree."""

    @pytest.mark.parametrize("seed", range(12))
    def test_all_engines_agree_with_bigint(self, seed):
        rng = random.Random(1000 + seed)
        circuit = random_netlist(rng)
        num_cycles = rng.randint(4, 24)
        bench = random_testbench(circuit, num_cycles, seed=seed)
        faults = random_fault_list(rng, circuit.num_ffs, num_cycles)

        reference = grade_faults(circuit, bench, faults, backend="bigint")
        for name in available_engines():
            result = grade_faults(circuit, bench, faults, backend=name)
            assert result.fail_cycles == reference.fail_cycles, (name, seed)
            assert result.vanish_cycles == reference.vanish_cycles, (name, seed)

    @pytest.mark.parametrize("seed", range(6))
    def test_fused_python_plan_agrees(self, seed, monkeypatch):
        """The pure-numpy fallback path must match the native path."""
        rng = random.Random(4000 + seed)
        circuit = random_netlist(rng)
        num_cycles = rng.randint(4, 20)
        bench = random_testbench(circuit, num_cycles, seed=seed)
        faults = random_fault_list(rng, circuit.num_ffs, num_cycles)

        native = grade_faults(circuit, bench, faults, backend="fused")
        monkeypatch.setattr(FusedEngine, "use_native", False)
        plan = grade_faults(circuit, bench, faults, backend="fused")
        assert get_engine("fused").last_stats["native"] is False
        assert plan.fail_cycles == native.fail_cycles
        assert plan.vanish_cycles == native.vanish_cycles

    @pytest.mark.parametrize("seed", range(4))
    def test_fused_agrees_with_serial_replay(self, seed):
        rng = random.Random(2000 + seed)
        circuit = random_netlist(rng)
        num_cycles = rng.randint(4, 16)
        bench = random_testbench(circuit, num_cycles, seed=seed)
        faults = random_fault_list(rng, circuit.num_ffs, num_cycles)

        oracle = grade_faults(circuit, bench, faults, backend="fused")
        golden = run_golden(circuit, bench)
        for index, fault in enumerate(faults):
            reference = replay_single_fault(
                circuit, bench, fault.flop_index, fault.cycle, golden
            )
            assert oracle.fail_cycles[index] == reference["fail_cycle"], fault
            assert oracle.vanish_cycles[index] == reference["vanish_cycle"], fault

    def test_word_boundary_lane_counts(self):
        # 63, 64, 65 and 130 faults straddle uint64 word boundaries
        rng = random.Random(77)
        circuit = random_netlist(rng)
        bench = random_testbench(circuit, 12, seed=3)
        base = exhaustive_fault_list(circuit, 12)
        for count in (1, 63, 64, 65, min(130, len(base))):
            faults = base[:count]
            fused = grade_faults(circuit, bench, faults, backend="fused")
            bigint = grade_faults(circuit, bench, faults, backend="bigint")
            assert fused.fail_cycles == bigint.fail_cycles, count
            assert fused.vanish_cycles == bigint.vanish_cycles, count


class TestEarlyExit:
    def test_fused_stops_once_all_faults_vanish(self):
        # Shift-register faults wash out after `depth` shifts; with a
        # 200-cycle bench the engine must stop within the first dozen
        # cycles instead of simulating the tail.
        depth = 4
        shift = build_shift_register(depth)
        bench = constant_testbench(shift, 200, value=0)
        faults = [
            SeuFault(cycle=cycle, flop_index=flop)
            for cycle in range(3)
            for flop in range(depth)
        ]
        engine = get_engine("fused")
        fused = grade_faults(shift, bench, faults, backend="fused")
        stats = engine.last_stats
        assert stats["cycles_executed"] < 12
        assert stats["num_cycles"] == 200
        # correctness is unaffected by the early exit
        bigint = grade_faults(shift, bench, faults, backend="bigint")
        assert fused.fail_cycles == bigint.fail_cycles
        assert fused.vanish_cycles == bigint.vanish_cycles
        assert all(cycle != -1 for cycle in fused.vanish_cycles)

    def test_early_exit_in_plan_path(self, monkeypatch):
        monkeypatch.setattr(FusedEngine, "use_native", False)
        shift = build_shift_register(3)
        bench = constant_testbench(shift, 150, value=0)
        faults = [SeuFault(cycle=0, flop_index=flop) for flop in range(3)]
        engine = get_engine("fused")
        fused = grade_faults(shift, bench, faults, backend="fused")
        assert engine.last_stats["cycles_executed"] < 10
        bigint = grade_faults(shift, bench, faults, backend="bigint")
        assert fused.fail_cycles == bigint.fail_cycles
        assert fused.vanish_cycles == bigint.vanish_cycles

    def test_no_early_exit_for_persistent_faults(self, counter, counter_bench):
        # counter corruption persists: the loop must run the whole bench
        faults = exhaustive_fault_list(counter, counter_bench.num_cycles)
        engine = get_engine("fused")
        grade_faults(counter, counter_bench, faults, backend="fused")
        assert (
            engine.last_stats["cycles_executed"]
            == counter_bench.num_cycles
        )


class TestSessionCaches:
    def test_golden_trace_shared_between_grades(self, counter, counter_bench):
        faults = exhaustive_fault_list(counter, counter_bench.num_cycles)
        first = grade_faults(counter, counter_bench, faults)
        second = grade_faults(counter, counter_bench, faults, backend="bigint")
        assert first.golden is second.golden

    def test_compiled_netlist_cached(self, counter):
        assert compiled_for(counter) is compiled_for(counter)

    def test_golden_cache_distinguishes_testbenches(self, counter):
        bench_a = random_testbench(counter, 10, seed=1)
        bench_b = random_testbench(counter, 10, seed=2)
        compiled = compiled_for(counter)
        assert golden_for(compiled, bench_a) is not golden_for(compiled, bench_b)
        assert golden_for(compiled, bench_a) is golden_for(compiled, bench_a)

    def test_dictionary_memoized_on_result(self, counter, counter_bench):
        faults = exhaustive_fault_list(counter, counter_bench.num_cycles)
        oracle = grade_faults(counter, counter_bench, faults)
        assert oracle.to_dictionary() is oracle.to_dictionary()
