"""Tests for the bit-parallel fault-grading oracle.

The oracle is the foundation of every result in the library, so it gets
the heaviest scrutiny: backend-vs-backend equivalence, oracle-vs-replay
equivalence, and semantic checks on hand-analysable circuits.
"""

import pytest

from repro.errors import CampaignError
from repro.faults.classify import FaultClass
from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.sim.cycle import replay_single_fault, run_golden
from repro.sim.parallel import grade_faults
from repro.sim.vectors import Testbench, constant_testbench, random_testbench
from tests.conftest import (
    build_counter,
    build_shift_register,
    build_sticky,
    build_toggle,
)

CIRCUITS = {
    "counter": build_counter,
    "shift": build_shift_register,
    "sticky": build_sticky,
    "toggle": build_toggle,
}


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_backends_agree(name):
    circuit = CIRCUITS[name]()
    bench = random_testbench(circuit, 20, seed=4)
    faults = exhaustive_fault_list(circuit, 20)
    numpy_result = grade_faults(circuit, bench, faults, backend="numpy")
    bigint_result = grade_faults(circuit, bench, faults, backend="bigint")
    assert numpy_result.fail_cycles == bigint_result.fail_cycles
    assert numpy_result.vanish_cycles == bigint_result.vanish_cycles


@pytest.mark.parametrize("name", sorted(CIRCUITS))
def test_oracle_matches_serial_replay(name):
    circuit = CIRCUITS[name]()
    bench = random_testbench(circuit, 16, seed=8)
    faults = exhaustive_fault_list(circuit, 16)
    oracle = grade_faults(circuit, bench, faults)
    golden = run_golden(circuit, bench)
    for index, fault in enumerate(faults):
        reference = replay_single_fault(
            circuit, bench, fault.flop_index, fault.cycle, golden
        )
        assert oracle.fail_cycles[index] == reference["fail_cycle"], fault
        assert oracle.vanish_cycles[index] == reference["vanish_cycle"], fault


class TestSemantics:
    def test_counter_faults_all_fail_immediately(self):
        counter = build_counter(4)
        bench = constant_testbench(counter, 8, value=1)
        faults = exhaustive_fault_list(counter, 8)
        oracle = grade_faults(counter, bench, faults)
        # counter bits are directly visible: every fault fails at inject cycle
        for index, fault in enumerate(faults):
            assert oracle.fail_cycles[index] == fault.cycle
            assert oracle.verdict(index) is FaultClass.FAILURE

    def test_shift_register_vanish_time_is_exact(self):
        depth = 5
        shift = build_shift_register(depth)
        bench = constant_testbench(shift, 16, value=0)
        faults = [SeuFault(cycle=3, flop_index=i) for i in range(depth)]
        oracle = grade_faults(shift, bench, faults)
        for index in range(depth):
            # flipped bit at stage i needs depth-i shifts to leave the
            # register; it reaches the output (failure) on the way out
            assert oracle.verdict(index) is FaultClass.FAILURE
            assert oracle.vanish_cycles[index] == 3 + (depth - index) - 1

    def test_sticky_unobserved_is_latent(self):
        sticky = build_sticky()
        bench = constant_testbench(sticky, 12, value=0)
        faults = [SeuFault(cycle=2, flop_index=0)]
        oracle = grade_faults(sticky, bench, faults)
        assert oracle.verdict(0) is FaultClass.LATENT

    def test_fault_overwritten_same_cycle_is_silent(self):
        # counter with enable=0 holds; flipping a bit persists (latent)...
        counter = build_counter(3)
        bench = constant_testbench(counter, 6, value=1)
        # ...but with enable=1 the flop reloads count+1 computed from the
        # flipped value, so the corruption persists too. Use the toggle
        # instead: q_next = ~q, so a flip at cycle t propagates. The truly
        # silent case: flip a shift register's tail bit just before it is
        # overwritten and after it fed the output...
        shift = build_shift_register(3)
        tail_fault = [SeuFault(cycle=4, flop_index=2)]
        # tail flop feeds the output this cycle -> failure, and is
        # overwritten at the cycle's end -> vanish at the same cycle
        bench = constant_testbench(shift, 8, value=0)
        oracle = grade_faults(shift, bench, tail_fault)
        assert oracle.fail_cycles[0] == 4
        assert oracle.vanish_cycles[0] == 4

    def test_verdict_priority_failure_over_silent(self):
        # when fail and vanish both occur, FAILURE dominates
        shift = build_shift_register(3)
        bench = constant_testbench(shift, 8, value=0)
        faults = exhaustive_fault_list(shift, 8)
        oracle = grade_faults(shift, bench, faults)
        for index in range(len(faults)):
            if oracle.fail_cycles[index] != -1:
                assert oracle.verdict(index) is FaultClass.FAILURE


class TestValidation:
    def test_empty_fault_list_rejected(self, counter, counter_bench):
        with pytest.raises(CampaignError):
            grade_faults(counter, counter_bench, [])

    def test_fault_beyond_testbench_rejected(self, counter, counter_bench):
        bad = [SeuFault(cycle=counter_bench.num_cycles, flop_index=0)]
        with pytest.raises(CampaignError, match="beyond"):
            grade_faults(counter, counter_bench, bad)

    def test_fault_flop_out_of_range_rejected(self, counter, counter_bench):
        bad = [SeuFault(cycle=0, flop_index=counter.num_ffs)]
        with pytest.raises(CampaignError, match="only"):
            grade_faults(counter, counter_bench, bad)

    def test_unknown_backend_rejected(self, counter, counter_bench):
        faults = exhaustive_fault_list(counter, counter_bench.num_cycles)
        with pytest.raises(CampaignError, match="backend"):
            grade_faults(counter, counter_bench, faults, backend="quantum")

    def test_word_boundary_fault_counts(self):
        # exactly 64 and 65 faults cross the uint64 word boundary
        counter = build_counter(5)
        bench = random_testbench(counter, 13, seed=1)
        faults = exhaustive_fault_list(counter, 13)
        assert len(faults) == 65
        full = grade_faults(counter, bench, faults)
        head = grade_faults(counter, bench, faults[:64])
        assert full.fail_cycles[:64] == head.fail_cycles


class TestResultContainer:
    def test_dictionary_roundtrip(self, counter, counter_bench):
        faults = exhaustive_fault_list(counter, counter_bench.num_cycles)
        oracle = grade_faults(counter, counter_bench, faults)
        dictionary = oracle.to_dictionary()
        assert len(dictionary) == len(faults)
        counts = dictionary.counts()
        assert sum(counts.values()) == len(faults)

    def test_verdicts_list_matches_scalar(self, counter, counter_bench):
        faults = exhaustive_fault_list(counter, counter_bench.num_cycles)
        oracle = grade_faults(counter, counter_bench, faults)
        assert oracle.verdicts() == [
            oracle.verdict(i) for i in range(len(faults))
        ]
