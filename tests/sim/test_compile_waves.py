"""Tests for netlist compilation and the VCD writer."""

import pytest

from repro.errors import SimulationError
from repro.logic.values import X
from repro.netlist.builder import NetlistBuilder
from repro.sim.compile import compile_netlist
from repro.sim.event import EventSimulator
from repro.sim.waves import VcdRecorder
from tests.conftest import build_counter


class TestCompile:
    def test_slots_are_dense_and_unique(self, counter):
        compiled = compile_netlist(counter)
        slots = list(compiled.net_index.values())
        assert sorted(slots) == list(range(compiled.num_slots))

    def test_ops_in_topological_order(self, counter):
        compiled = compile_netlist(counter)
        produced = set(compiled.input_slots)
        for flop in compiled.flops:
            produced.add(flop.q_index)
        for opcode, in_slots, out_slot in compiled.ops:
            del opcode
            for slot in in_slots:
                assert slot in produced
            produced.add(out_slot)

    def test_io_slot_order_matches_ports(self, counter):
        compiled = compile_netlist(counter)
        assert len(compiled.input_slots) == len(counter.inputs)
        assert len(compiled.output_slots) == len(counter.outputs)

    def test_flop_order_matches_netlist(self, counter):
        compiled = compile_netlist(counter)
        assert [f.name for f in compiled.flops] == counter.ff_names()

    def test_initial_state_packs_inits(self):
        b = NetlistBuilder("inits")
        a = b.input("a")
        b.dff(a, q="q0", init=1, name="f0")
        b.dff(a, q="q1", init=0, name="f1")
        b.dff(a, q="q2", init=1, name="f2")
        b.output_net("y", b.or_("q0", "q1", "q2"))
        compiled = compile_netlist(b.build())
        assert compiled.initial_state() == 0b101

    def test_x_init_policy(self):
        b = NetlistBuilder("xinit")
        a = b.input("a")
        b.dff(a, q="q", init=X, name="fx")
        b.output_net("y", "q")
        compiled = compile_netlist(b.build())
        assert compiled.initial_state(x_as_zero=True) == 0
        with pytest.raises(SimulationError):
            compiled.initial_state(x_as_zero=False)


class TestVcd:
    def _record(self, circuit, cycles=4):
        sim = EventSimulator(circuit)
        recorder = VcdRecorder(circuit)
        sim.observe(recorder.on_change)
        for cycle in range(cycles):
            sim.step({name: cycle & 1 for name in circuit.inputs})
        return recorder

    def test_header_structure(self, counter):
        recorder = self._record(counter)
        text = recorder.dumps()
        assert "$timescale" in text
        assert "$enddefinitions" in text
        assert "$var wire 1" in text

    def test_every_net_declared(self, counter):
        recorder = self._record(counter)
        text = recorder.dumps()
        assert text.count("$var wire 1") == len(counter.all_referenced_nets())

    def test_changes_have_timestamps(self, counter):
        recorder = self._record(counter)
        text = recorder.dumps()
        assert "#0" in text
        assert "#1" in text

    def test_short_ids_unique(self):
        ids = {VcdRecorder._short_id(i) for i in range(500)}
        assert len(ids) == 500

    def test_write_to_file(self, tmp_path, counter):
        recorder = self._record(counter)
        path = tmp_path / "wave.vcd"
        recorder.write(path)
        assert path.read_text().startswith("$date")
