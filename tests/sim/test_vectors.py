"""Unit tests for testbench containers and stimulus generators."""

import pytest

from repro.errors import SimulationError
from repro.sim.vectors import (
    Testbench,
    burst_testbench,
    concat_testbenches,
    constant_testbench,
    random_testbench,
    walking_ones_testbench,
)
from tests.conftest import build_counter


class TestContainer:
    def test_vector_width_checked(self):
        with pytest.raises(SimulationError):
            Testbench(["a", "b"], [5])  # 5 needs 3 bits

    def test_bit_access(self):
        bench = Testbench(["a", "b", "c"], [0b101, 0b010])
        assert bench.bit(0, 0) == 1
        assert bench.bit(0, 1) == 0
        assert bench.bit(1, 1) == 1

    def test_as_dicts(self):
        bench = Testbench(["x", "y"], [0b10])
        (row,) = list(bench.as_dicts())
        assert row == {"x": 0, "y": 1}

    def test_stimulus_bits(self):
        bench = Testbench(["a", "b"], [0, 1, 2])
        assert bench.stimulus_bits() == 6

    def test_truncated(self):
        bench = Testbench(["a"], [0, 1, 0, 1])
        short = bench.truncated(2)
        assert short.vectors == [0, 1]
        assert bench.num_cycles == 4  # original untouched


class TestGenerators:
    def test_random_is_reproducible(self):
        counter = build_counter()
        a = random_testbench(counter, 30, seed=5)
        b = random_testbench(counter, 30, seed=5)
        assert a.vectors == b.vectors

    def test_random_seed_changes_vectors(self):
        counter = build_counter()
        a = random_testbench(counter, 30, seed=5)
        b = random_testbench(counter, 30, seed=6)
        assert a.vectors != b.vectors

    def test_random_fits_input_width(self):
        counter = build_counter()
        bench = random_testbench(counter, 100, seed=1)
        assert all(v < 2 for v in bench.vectors)  # counter has 1 input

    def test_burst_holds_values(self):
        counter = build_counter()
        bench = burst_testbench(counter, 64, seed=2, burst_length=8)
        # bursts imply consecutive repeats exist
        repeats = sum(
            1 for a, b in zip(bench.vectors, bench.vectors[1:]) if a == b
        )
        assert repeats > 16

    def test_walking_ones(self):
        counter = build_counter()
        bench = walking_ones_testbench(counter, 4)
        assert bench.vectors == [1, 1, 1, 1]  # single input wraps

    def test_constant(self):
        counter = build_counter()
        bench = constant_testbench(counter, 5, value=1)
        assert bench.vectors == [1] * 5

    def test_concat(self):
        counter = build_counter()
        a = constant_testbench(counter, 3, value=0)
        b = constant_testbench(counter, 2, value=1)
        combined = concat_testbenches([a, b])
        assert combined.vectors == [0, 0, 0, 1, 1]

    def test_concat_input_mismatch_rejected(self):
        a = Testbench(["x"], [0])
        b = Testbench(["y"], [0])
        with pytest.raises(SimulationError):
            concat_testbenches([a, b])

    def test_concat_empty_rejected(self):
        with pytest.raises(SimulationError):
            concat_testbenches([])
