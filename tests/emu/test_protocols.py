"""Hardware-protocol vs oracle agreement — the library's keystone tests.

For every technique, drive the *instrumented netlist itself* through the
full injection protocol (mask programming, state scan-in, phase
interleaving...) and require that the verdict observed at the hardware
level equals the functional oracle's prediction for every fault. This
closes the loop: instrumentation transforms, protocol drivers and the
bit-parallel oracle are three independent implementations of the same
semantics.
"""

import pytest

from repro.emu.instrument import instrument_circuit
from repro.emu.protocol import (
    _Driver,
    drive_mask_scan,
    drive_state_scan,
    drive_time_mux,
)
from repro.faults.model import exhaustive_fault_list
from repro.sim.parallel import grade_faults
from repro.sim.vectors import random_testbench
from tests.conftest import build_counter, build_shift_register, build_sticky

DRIVERS = {
    "mask_scan": drive_mask_scan,
    "state_scan": drive_state_scan,
    "time_multiplexed": drive_time_mux,
}

CIRCUITS = {
    "counter": build_counter,
    "shift": build_shift_register,
    "sticky": build_sticky,
}


@pytest.mark.parametrize("technique", sorted(DRIVERS))
@pytest.mark.parametrize("circuit_name", sorted(CIRCUITS))
def test_protocol_verdicts_match_oracle(technique, circuit_name):
    circuit = CIRCUITS[circuit_name]()
    cycles = 14
    bench = random_testbench(circuit, cycles, seed=21)
    faults = exhaustive_fault_list(circuit, cycles)
    oracle = grade_faults(circuit, bench, faults)

    instrumented = instrument_circuit(circuit, technique)
    driver = _Driver(instrumented, bench)
    drive = DRIVERS[technique]

    for index, fault in enumerate(faults):
        outcome = drive(instrumented, bench, fault, driver=driver)
        assert outcome.verdict is oracle.verdict(index), (
            f"{technique} on {circuit_name}: {fault.describe()} -> "
            f"hardware {outcome.verdict}, oracle {oracle.verdict(index)}"
        )


@pytest.mark.parametrize("technique", sorted(DRIVERS))
def test_protocol_failure_cycles_match_oracle(technique):
    circuit = build_shift_register(5)
    bench = random_testbench(circuit, 12, seed=3)
    faults = exhaustive_fault_list(circuit, 12)
    oracle = grade_faults(circuit, bench, faults)
    instrumented = instrument_circuit(circuit, technique)
    driver = _Driver(instrumented, bench)
    for index, fault in enumerate(faults):
        if oracle.fail_cycles[index] == -1:
            continue
        outcome = DRIVERS[technique](instrumented, bench, fault, driver=driver)
        assert outcome.fail_cycle == oracle.fail_cycles[index], fault.describe()


def test_time_mux_stops_early_on_silent_faults():
    """The defining property: time-mux classifies a silent fault the
    moment its effect disappears, not at testbench end."""
    circuit = build_shift_register(4)
    cycles = 40
    bench = random_testbench(circuit, cycles, seed=5)
    faults = exhaustive_fault_list(circuit, cycles)
    oracle = grade_faults(circuit, bench, faults)
    instrumented = instrument_circuit(circuit, "time_multiplexed")
    driver = _Driver(instrumented, bench)

    # pick an early-injected fault that vanishes quickly
    chosen = None
    for index, fault in enumerate(faults):
        vanish = oracle.vanish_cycles[index]
        if (
            fault.cycle < 5
            and oracle.fail_cycles[index] == -1
            and vanish != -1
            and vanish - fault.cycle <= 4
        ):
            chosen = (index, fault)
            break
    if chosen is None:
        pytest.skip("no early-vanishing silent fault in this configuration")
    index, fault = chosen
    outcome = drive_time_mux(instrumented, bench, fault, driver=driver)
    # protocol cost must be far below a full 2x-testbench interleave
    assert outcome.emulation_cycles < cycles
