"""Tests for the RAM layout, board model and baseline timing models."""

import pytest

from repro.emu.board import RC1000, BoardModel
from repro.emu.hostlink import (
    HostLinkModel,
    SoftwareFaultSimModel,
    SpeedComparison,
    reference_baselines,
)
from repro.emu.ram import ram_layout_for
from repro.errors import CampaignError
from repro.faults.model import exhaustive_fault_list
from repro.sim.vectors import random_testbench
from repro.synth.area import VIRTEX_2000E
from tests.conftest import build_counter


# b14 experiment dimensions
B14 = dict(num_inputs=32, num_outputs=54, num_flops=215,
           num_cycles=160, num_faults=34_400)


class TestRamLayout:
    def test_stimuli_bits_exact(self):
        layout = ram_layout_for("mask_scan", **B14)
        assert layout.region("stimuli").bits == 160 * 32  # 5,120

    def test_expected_outputs_only_for_comparing_techniques(self):
        for technique in ("mask_scan", "state_scan"):
            layout = ram_layout_for(technique, **B14)
            assert layout.region("expected_outputs").bits == 160 * 54
        layout = ram_layout_for("time_multiplexed", **B14)
        with pytest.raises(CampaignError):
            layout.region("expected_outputs")

    def test_time_mux_fpga_ram_is_smallest(self):
        # the paper's RAM column: time-mux needs only the stimuli on-chip
        sizes = {
            t: ram_layout_for(t, **B14).fpga_kbits
            for t in ("mask_scan", "state_scan", "time_multiplexed")
        }
        assert sizes["time_multiplexed"] < sizes["mask_scan"]
        assert sizes["time_multiplexed"] < sizes["state_scan"]
        assert sizes["time_multiplexed"] == pytest.approx(5.12, rel=0.01)

    def test_state_scan_board_ram_dominated_by_states(self):
        layout = ram_layout_for("state_scan", **B14)
        states = layout.region("faulty_states")
        assert states.bits == 34_400 * 215  # 7.396 Mbit
        # the paper's figure is 7,289 kbits — same order, ~2 % apart
        assert layout.board_kbits == pytest.approx(7396 + 68.8, rel=0.02)

    def test_results_two_bits_per_fault(self):
        layout = ram_layout_for("time_multiplexed", **B14)
        assert layout.region("results").bits == 2 * 34_400

    def test_words_accounting(self):
        layout = ram_layout_for("mask_scan", **B14)
        assert layout.total_words() == sum(
            r.words(32) for r in layout.regions
        )
        assert layout.region("stimuli").words(32) == 160

    def test_fits_on_rc1000(self):
        layout = ram_layout_for("state_scan", **B14)
        assert layout.board_kbits < RC1000.board_ram_kbits

    def test_summary_text(self):
        text = ram_layout_for("state_scan", **B14).summary()
        assert "faulty_states" in text and "total" in text

    def test_bad_technique_rejected(self):
        with pytest.raises(CampaignError):
            ram_layout_for("psychic", **B14)

    def test_bad_sizes_rejected(self):
        bad = dict(B14)
        bad["num_cycles"] = 0
        with pytest.raises(CampaignError):
            ram_layout_for("mask_scan", **bad)


class TestBoard:
    def test_rc1000_profile(self):
        assert RC1000.clock_hz == 25e6
        assert RC1000.device is VIRTEX_2000E
        assert RC1000.board_ram_kbits == 8 * 1024 * 8

    def test_cycles_to_seconds(self):
        board = BoardModel("b", 10e6, VIRTEX_2000E, 100.0)
        assert board.cycles_to_seconds(10_000_000) == pytest.approx(1.0)

    def test_transfer_seconds(self):
        board = BoardModel("b", 10e6, VIRTEX_2000E, 100.0,
                           pci_bandwidth_mbps=8.0)
        # 8 kbit at 8 Mbit/s = 1 ms
        assert board.transfer_seconds(8.0) == pytest.approx(1e-3)

    def test_device_capacity_checks(self):
        from repro.synth.area import AreaReport

        report = AreaReport("x", luts=40_000, ffs=100)
        assert not VIRTEX_2000E.fits(report)
        small = AreaReport("y", luts=100, ffs=100)
        assert VIRTEX_2000E.fits(small)
        assert 0 < VIRTEX_2000E.lut_utilisation(small) < 0.01


class TestHostLink:
    def test_default_lands_near_paper_figure(self):
        # the paper quotes ~100 us/fault for [2] on the 160-cycle bench
        host = HostLinkModel()
        assert host.us_per_fault(160) == pytest.approx(100.0, rel=0.2)

    def test_per_vector_io_much_slower(self):
        host = HostLinkModel(per_vector_io=True)
        assert host.us_per_fault(160) > 10 * HostLinkModel().us_per_fault(160)

    def test_campaign_scales_linearly(self):
        host = HostLinkModel()
        one = host.campaign_seconds(1, 160)
        many = host.campaign_seconds(1000, 160)
        assert many == pytest.approx(1000 * one)

    def test_zero_faults_rejected(self):
        with pytest.raises(CampaignError):
            HostLinkModel().campaign_seconds(0, 160)


class TestSoftwareSim:
    def test_analytic_scales_with_size(self):
        counter = build_counter(4)
        model = SoftwareFaultSimModel()
        assert model.seconds_per_fault_analytic(
            counter, 320
        ) == pytest.approx(2 * model.seconds_per_fault_analytic(counter, 160))

    def test_measured_returns_positive_time(self):
        counter = build_counter(4)
        bench = random_testbench(counter, 16, seed=1)
        faults = exhaustive_fault_list(counter, 16)[:5]
        model = SoftwareFaultSimModel()
        measured = model.seconds_per_fault_measured(counter, bench, faults)
        assert measured > 0

    def test_measure_requires_sample(self):
        counter = build_counter(4)
        bench = random_testbench(counter, 16, seed=1)
        with pytest.raises(CampaignError):
            SoftwareFaultSimModel().seconds_per_fault_measured(
                counter, bench, []
            )


class TestSpeedComparison:
    def test_speedup_ratio(self):
        fast = SpeedComparison("fast", 1.0)
        slow = SpeedComparison("slow", 100.0)
        assert fast.speedup_vs(slow) == pytest.approx(100.0)

    def test_reference_baselines_ordering(self):
        counter = build_counter(4)
        rows = reference_baselines(counter, 160)
        assert rows[0].method.startswith("fault simulation")
        assert rows[1].us_per_fault < rows[0].us_per_fault or True  # both reported
