"""Tests for the multi-chain state-scan extension (beyond the paper).

Splitting the shadow register into K parallel chains divides the
per-fault scan-in cost by ~K; correctness must be unchanged: the
protocol driver on a multi-chain instrument must still reproduce the
oracle verdict for every fault.
"""

import pytest

from repro.emu.campaign import run_campaign
from repro.emu.instrument.statescan import chain_of, instrument_state_scan
from repro.emu.protocol import _Driver, drive_state_scan
from repro.errors import CampaignError, InstrumentationError
from repro.faults.model import exhaustive_fault_list
from repro.sim.parallel import grade_faults
from repro.sim.vectors import random_testbench
from tests.conftest import build_counter, build_shift_register


class TestChainMapping:
    def test_single_chain_is_identity(self):
        for index in range(10):
            assert chain_of(index, 10, 1) == (0, index)

    def test_two_chains_split_contiguously(self):
        # 10 flops, 2 chains of 5
        assert chain_of(0, 10, 2) == (0, 0)
        assert chain_of(4, 10, 2) == (0, 4)
        assert chain_of(5, 10, 2) == (1, 0)
        assert chain_of(9, 10, 2) == (1, 4)

    def test_uneven_split(self):
        # 7 flops, 3 chains -> lengths 3/3/1
        chains = [chain_of(i, 7, 3)[0] for i in range(7)]
        assert chains == [0, 0, 0, 1, 1, 1, 2]


class TestInstrument:
    def test_ports_per_chain(self):
        circuit = build_counter(6)
        instrumented = instrument_state_scan(circuit, num_chains=3)
        assert instrumented.num_chains == 3
        for chain in range(3):
            assert f"ss_si[{chain}]" in instrumented.netlist.inputs
            assert f"ss_so[{chain}]" in instrumented.netlist.outputs

    def test_chain_count_capped_at_flop_count(self):
        circuit = build_counter(3)
        instrumented = instrument_state_scan(circuit, num_chains=99)
        assert instrumented.num_chains == 3

    def test_flop_budget_unchanged(self):
        circuit = build_counter(6)
        single = instrument_state_scan(circuit, num_chains=1)
        multi = instrument_state_scan(circuit, num_chains=3)
        assert single.netlist.num_ffs == multi.netlist.num_ffs

    def test_zero_chains_rejected(self):
        with pytest.raises(InstrumentationError):
            instrument_state_scan(build_counter(4), num_chains=0)


@pytest.mark.parametrize("num_chains", [1, 2, 3, 5])
def test_multichain_protocol_matches_oracle(num_chains):
    circuit = build_shift_register(5)
    bench = random_testbench(circuit, 12, seed=31)
    faults = exhaustive_fault_list(circuit, 12)
    oracle = grade_faults(circuit, bench, faults)
    instrumented = instrument_state_scan(circuit, num_chains=num_chains)
    driver = _Driver(instrumented, bench)
    for index, fault in enumerate(faults):
        outcome = drive_state_scan(instrumented, bench, fault, driver=driver)
        assert outcome.verdict is oracle.verdict(index), fault.describe()


class TestCampaignAccounting:
    def test_scan_cost_divides_by_chains(self):
        circuit = build_shift_register(8)
        bench = random_testbench(circuit, 10, seed=5)
        faults = exhaustive_fault_list(circuit, 10)
        oracle = grade_faults(circuit, bench, faults)
        single = run_campaign(
            circuit, bench, "state_scan", faults=faults, oracle=oracle
        )
        quad = run_campaign(
            circuit, bench, "state_scan", faults=faults, oracle=oracle,
            scan_chains=4,
        )
        # setup = faults * (scan_in + 1): 8 -> 2 cycles of scan-in
        assert single.breakdown.setup == len(faults) * (8 + 1)
        assert quad.breakdown.setup == len(faults) * (2 + 1)
        # run/readback identical
        assert single.breakdown.run == quad.breakdown.run

    def test_chains_only_affect_state_scan_setup(self):
        circuit = build_shift_register(8)
        bench = random_testbench(circuit, 10, seed=5)
        faults = exhaustive_fault_list(circuit, 10)
        oracle = grade_faults(circuit, bench, faults)
        a = run_campaign(
            circuit, bench, "mask_scan", faults=faults, oracle=oracle
        )
        b = run_campaign(
            circuit, bench, "mask_scan", faults=faults, oracle=oracle,
            scan_chains=4,
        )
        assert a.total_cycles == b.total_cycles

    def test_invalid_chain_count_rejected(self):
        circuit = build_shift_register(4)
        bench = random_testbench(circuit, 6, seed=5)
        with pytest.raises(CampaignError):
            run_campaign(circuit, bench, "state_scan", scan_chains=0)

    def test_many_chains_close_gap_to_time_mux(self):
        """With enough chains, state-scan's per-fault cost approaches the
        replay tail alone — the knob trades ports for speed."""
        circuit = build_shift_register(16)
        bench = random_testbench(circuit, 12, seed=6)
        faults = exhaustive_fault_list(circuit, 12)
        oracle = grade_faults(circuit, bench, faults)
        costs = {
            chains: run_campaign(
                circuit, bench, "state_scan", faults=faults, oracle=oracle,
                scan_chains=chains,
            ).total_cycles
            for chains in (1, 2, 4, 16)
        }
        assert costs[16] < costs[4] < costs[2] < costs[1]
