"""Tests for the controller generator and the AutonomousEmulator facade."""

import pytest

from repro.emu.controller import build_controller
from repro.emu.system import AutonomousEmulator, merge_system
from repro.errors import CampaignError, InstrumentationError
from repro.netlist.validate import validate_netlist
from repro.sim.compile import compile_netlist
from repro.sim.vectors import random_testbench
from tests.conftest import build_counter

PARAMS = dict(
    num_inputs=4,
    num_outputs=5,
    num_flops=8,
    num_cycles=32,
    num_faults=256,
    ram_words=512,
)


class TestControllerGeneration:
    @pytest.mark.parametrize(
        "technique", ["mask_scan", "state_scan", "time_multiplexed"]
    )
    def test_controller_is_valid_netlist(self, technique):
        controller = build_controller(technique, **PARAMS)
        validate_netlist(controller)
        compile_netlist(controller)  # must levelize cleanly

    def test_unknown_technique(self):
        with pytest.raises(InstrumentationError):
            build_controller("psychic", **PARAMS)

    def test_port_contract_mask_scan(self):
        controller = build_controller("mask_scan", **PARAMS)
        outputs = set(controller.outputs)
        for port in ("ms_set", "ms_rst", "ms_inject", "done", "ram_we"):
            assert port in outputs, port
        assert any(net.startswith("ms_row[") for net in outputs)
        assert any(net.startswith("circ_state[") for net in controller.inputs)

    def test_port_contract_state_scan(self):
        controller = build_controller("state_scan", **PARAMS)
        outputs = set(controller.outputs)
        for port in ("ss_si", "ss_shift", "ss_load"):
            assert port in outputs, port
        assert "scan_out_bit" in controller.inputs

    def test_port_contract_time_mux(self):
        controller = build_controller("time_multiplexed", **PARAMS)
        outputs = set(controller.outputs)
        for port in (
            "tm_ena_golden",
            "tm_ena_faulty",
            "tm_save_state",
            "tm_load_state",
            "tm_inject",
        ):
            assert port in outputs, port
        assert "state_diff" in controller.inputs

    def test_mask_scan_controller_carries_golden_state_register(self):
        small = build_controller("mask_scan", **PARAMS)
        # golden_final register bank: one flop per circuit flop
        golden_flops = [
            name for name in small.dffs if name.startswith("ff$golden_final")
        ]
        assert len(golden_flops) == PARAMS["num_flops"]

    def test_controller_scales_with_testbench_length(self):
        short = build_controller("state_scan", **{**PARAMS, "num_cycles": 8})
        long = build_controller(
            "state_scan", **{**PARAMS, "num_cycles": 4096}
        )
        assert long.num_ffs > short.num_ffs  # wider cycle counter

    def test_state_scan_controller_smallest(self):
        """The paper's system rows: state-scan has the leanest controller
        (no golden-state register, no output capture bank)."""
        sizes = {
            t: build_controller(t, **PARAMS).num_ffs
            for t in ("mask_scan", "state_scan", "time_multiplexed")
        }
        assert sizes["state_scan"] < sizes["mask_scan"]


class TestFacade:
    def test_bad_technique_rejected(self, counter):
        with pytest.raises(CampaignError):
            AutonomousEmulator(counter, "psychic")

    def test_synthesize_rows_are_additive(self, counter):
        emulator = AutonomousEmulator(
            counter, "mask_scan", campaign_cycles=16, campaign_faults=64
        )
        summary = emulator.synthesize(16, 64)
        assert summary.system.luts == summary.modified.luts + summary.controller.luts
        assert summary.system.ffs == summary.modified.ffs + summary.controller.ffs

    def test_synthesize_describe(self, counter):
        emulator = AutonomousEmulator(
            counter, "state_scan", campaign_cycles=16, campaign_faults=64
        )
        text = emulator.synthesize(16, 64).describe()
        assert "state_scan" in text and "LUTs" in text

    def test_run_campaign_through_facade(self, counter):
        bench = random_testbench(counter, 12, seed=3)
        emulator = AutonomousEmulator(counter, "time_multiplexed")
        result = emulator.run_campaign(bench)
        assert result.num_faults == counter.num_ffs * 12

    def test_instrumented_cached(self, counter):
        emulator = AutonomousEmulator(counter, "mask_scan")
        assert emulator.instrumented is emulator.instrumented


class TestMergedSystem:
    @pytest.mark.parametrize(
        "technique", ["mask_scan", "state_scan", "time_multiplexed"]
    )
    def test_merged_netlist_is_valid_and_compilable(self, counter, technique):
        emulator = AutonomousEmulator(
            counter, technique, campaign_cycles=16, campaign_faults=64
        )
        merged = emulator.merged_system_netlist(16, 64)
        validate_netlist(merged, allow_dangling=True)
        compiled = compile_netlist(merged)
        assert compiled.num_flops == (
            emulator.instrumented.netlist.num_ffs
            + emulator.controller_netlist(16, 64).num_ffs
        )

    def test_merged_boundary_is_ram_and_handshake(self, counter):
        emulator = AutonomousEmulator(
            counter, "mask_scan", campaign_cycles=16, campaign_faults=64
        )
        merged = emulator.merged_system_netlist(16, 64)
        # primary inputs: only start + RAM read data (the autonomous claim)
        assert all(
            net.startswith(("ctl.start", "ctl.ram_rdata")) for net in merged.inputs
        )

    def test_merged_system_clocks_without_error(self, counter):
        emulator = AutonomousEmulator(
            counter, "time_multiplexed", campaign_cycles=16, campaign_faults=64
        )
        merged = emulator.merged_system_netlist(16, 64)
        from repro.sim.cycle import CycleSimulator

        sim = CycleSimulator(merged)
        start_bit = merged.inputs.index("ctl.start")
        for cycle in range(20):
            sim.step(1 << start_bit if cycle == 0 else 0)
        # the controller's cycle counter must have advanced
        assert sim.get_state() != 0
