"""Structural and transparent-mode tests for the three instruments.

"Transparent mode" = all control inputs held inactive; the instrumented
circuit must then behave exactly like the original. This is the basic
sanity every instrumentation transform must pass before the protocol
tests exercise injection.
"""

import pytest

from repro.emu.instrument import TECHNIQUES, instrument_circuit
from repro.errors import InstrumentationError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import validate_netlist
from repro.sim.compile import compile_netlist
from repro.sim.cycle import CycleSimulator
from repro.sim.vectors import random_testbench
from tests.conftest import build_counter, build_shift_register, build_sticky

CIRCUITS = [build_counter, build_shift_register, build_sticky]


def transparent_run(instrumented, testbench):
    """Run the instrumented netlist with controls inactive; return the
    original outputs per cycle."""
    netlist = instrumented.netlist
    position = {net: i for i, net in enumerate(netlist.inputs)}
    original_positions = [
        position[net] for net in instrumented.original.inputs
    ]
    controls = {}
    if instrumented.technique == "time_multiplexed":
        # golden flops must advance for the circuit to run at all
        controls["tm_ena_golden"] = 1
    sim = CycleSimulator(compile_netlist(netlist))
    out_positions = [
        netlist.outputs.index(net) for net in instrumented.original.outputs
    ]
    observed = []
    for vector in testbench.vectors:
        word = 0
        for bit, pos in enumerate(original_positions):
            if (vector >> bit) & 1:
                word |= 1 << pos
        for net, value in controls.items():
            if value:
                word |= 1 << position[net]
        outputs = sim.step(word)
        packed = 0
        for bit, pos in enumerate(out_positions):
            if (outputs >> pos) & 1:
                packed |= 1 << bit
        observed.append(packed)
    return observed


@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("factory", CIRCUITS)
def test_transparent_mode_equals_original(technique, factory):
    circuit = factory()
    bench = random_testbench(circuit, 24, seed=13)
    instrumented = instrument_circuit(circuit, technique)
    golden = CycleSimulator(circuit).run(bench)
    observed = transparent_run(instrumented, bench)
    assert observed == golden


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_interface_preserved(technique, counter):
    instrumented = instrument_circuit(counter, technique)
    netlist = instrumented.netlist
    # original inputs/outputs still present, in order
    assert netlist.inputs[: len(counter.inputs)] == counter.inputs
    assert netlist.outputs[: len(counter.outputs)] == counter.outputs
    validate_netlist(netlist)


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_flop_order_matches_original(technique, counter):
    instrumented = instrument_circuit(counter, technique)
    assert instrumented.flop_order == counter.ff_names()


class TestFlopBudgets:
    """The paper's Table-1 flip-flop ratios are structural facts."""

    def test_mask_scan_doubles_flops(self, counter):
        instrumented = instrument_circuit(counter, "mask_scan")
        assert instrumented.netlist.num_ffs == 2 * counter.num_ffs

    def test_state_scan_doubles_flops(self, counter):
        instrumented = instrument_circuit(counter, "state_scan")
        assert instrumented.netlist.num_ffs == 2 * counter.num_ffs

    def test_time_mux_quadruples_flops(self, counter):
        instrumented = instrument_circuit(counter, "time_multiplexed")
        assert instrumented.netlist.num_ffs == 4 * counter.num_ffs

    def test_figure1_roles_present(self, counter):
        instrumented = instrument_circuit(counter, "time_multiplexed")
        names = set(instrumented.netlist.dffs)
        for index in range(counter.num_ffs):
            for role in ("golden", "faulty", "mask", "state"):
                assert f"tm${role}[{index}]" in names


class TestPersistentForceHardware:
    """The opt-in force override for stuck-at / intermittent models."""

    def test_default_instruments_have_no_force_ports(self, counter):
        for technique in ("mask_scan", "time_multiplexed"):
            instrumented = instrument_circuit(counter, technique)
            assert "force" not in instrumented.control_inputs
            with pytest.raises(InstrumentationError):
                instrumented.control_input("force")

    def test_persistent_model_adds_force_ports(self, counter):
        for technique in ("mask_scan", "time_multiplexed"):
            instrumented = instrument_circuit(
                counter, technique, fault_model="stuck_at_1"
            )
            assert instrumented.control_input("force").endswith("force")
            assert instrumented.control_input("force_value").endswith(
                "force_val"
            )

    def test_state_scan_unchanged_for_persistent_models(self, counter):
        plain = instrument_circuit(counter, "state_scan")
        persistent = instrument_circuit(
            counter, "state_scan", fault_model="stuck_at_0"
        )
        assert len(persistent.netlist.gates) == len(plain.netlist.gates)

    def test_persistent_maskscan_transparent_when_inactive(self, counter):
        from repro.emu.instrument.maskscan import instrument_mask_scan
        from repro.sim.cycle import run_golden

        instrumented = instrument_mask_scan(counter, persistent=True)
        bench = random_testbench(counter, 20, seed=6)
        reference = run_golden(counter, bench)
        observed = transparent_run(instrumented, bench)
        assert observed == reference.outputs

    def test_maskscan_force_holds_the_flop(self):
        """Program the mask for the toggle's flop, then hold the force:
        the visible q must stick at the forced value every cycle, and
        release when the force drops — a stuck-at / intermittent fault in
        hardware."""
        from tests.conftest import build_toggle

        toggle = build_toggle()
        instrumented = instrument_circuit(
            toggle, "mask_scan", fault_model="stuck_at_1"
        )
        netlist = instrumented.netlist
        sim = CycleSimulator(compile_netlist(netlist))
        position = {net: i for i, net in enumerate(netlist.inputs)}
        out_position = netlist.outputs.index("out")

        def step(**controls):
            word = 0
            for net, value in controls.items():
                if value:
                    word |= 1 << position[net]
            return (sim.step(word) >> out_position) & 1

        # cycle 0: program the mask (address 0/0 selects flop 0)
        step(ms_set=1)
        # cycles 1..4: hold the force at 1 -> q reads 1 every cycle even
        # though the toggle flop would alternate
        forced = [
            step(ms_force=1, ms_force_val=1) for _ in range(4)
        ]
        assert forced == [1, 1, 1, 1]
        # release: the raw flop (fed ~q_eff = 0 while forced) now shows
        # its own alternating value again
        released = [step() for _ in range(3)]
        assert released in ([1, 0, 1], [0, 1, 0])

    def test_maskscan_force_to_zero(self):
        from tests.conftest import build_toggle

        toggle = build_toggle()
        instrumented = instrument_circuit(
            toggle, "mask_scan", fault_model="stuck_at_0"
        )
        netlist = instrumented.netlist
        sim = CycleSimulator(compile_netlist(netlist))
        position = {net: i for i, net in enumerate(netlist.inputs)}
        out_position = netlist.outputs.index("out")

        def step(**controls):
            word = 0
            for net, value in controls.items():
                if value:
                    word |= 1 << position[net]
            return (sim.step(word) >> out_position) & 1

        step(ms_set=1)
        forced = [step(ms_force=1, ms_force_val=0) for _ in range(4)]
        assert forced == [0, 0, 0, 0]


class TestErrors:
    def test_unknown_technique(self, counter):
        with pytest.raises(InstrumentationError):
            instrument_circuit(counter, "teleport")

    def test_flopless_circuit_rejected(self):
        b = NetlistBuilder("comb")
        a = b.input("a")
        b.output_net("y", b.inv(a))
        comb = b.build()
        for technique in TECHNIQUES:
            with pytest.raises(InstrumentationError):
                instrument_circuit(comb, technique)
