"""Tests for the cycle-accurate campaign engines (Table 2's machinery)."""

import pytest

from repro.emu.board import RC1000, BoardModel
from repro.emu.campaign import (
    MASK_PROGRAM_CYCLES,
    STATE_LOAD_CYCLES,
    VERDICT_WRITE_CYCLES,
    run_campaign,
)
from repro.errors import CampaignError
from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.sim.parallel import grade_faults
from repro.sim.vectors import constant_testbench, random_testbench
from repro.synth.area import VIRTEX_2000E
from tests.conftest import build_counter, build_shift_register, build_sticky


@pytest.fixture(scope="module")
def setup():
    circuit = build_shift_register(5)
    bench = random_testbench(circuit, 20, seed=9)
    faults = exhaustive_fault_list(circuit, 20)
    oracle = grade_faults(circuit, bench, faults)
    return circuit, bench, faults, oracle


class TestGeneral:
    def test_unknown_technique_rejected(self, setup):
        circuit, bench, faults, oracle = setup
        with pytest.raises(CampaignError):
            run_campaign(circuit, bench, "psychic", faults=faults, oracle=oracle)

    def test_defaults_to_exhaustive_faults(self):
        circuit = build_counter(3)
        bench = random_testbench(circuit, 8, seed=2)
        result = run_campaign(circuit, bench, "mask_scan")
        assert result.num_faults == 3 * 8

    def test_oracle_fault_count_checked(self, setup):
        circuit, bench, faults, oracle = setup
        with pytest.raises(CampaignError):
            run_campaign(
                circuit, bench, "mask_scan", faults=faults[:5], oracle=oracle
            )

    def test_oracle_fault_identity_checked(self, setup):
        """Same length, different faults: previously accepted silently,
        producing a wrong dictionary."""
        circuit, bench, faults, oracle = setup
        shifted = list(faults[1:]) + [faults[0]]
        with pytest.raises(CampaignError):
            run_campaign(
                circuit, bench, "mask_scan", faults=shifted, oracle=oracle
            )

    def test_oracle_accepts_equal_fault_copies(self, setup):
        """Equality is by value: a re-built but identical fault list is a
        valid pairing with the oracle."""
        circuit, bench, faults, oracle = setup
        copies = [
            SeuFault(
                cycle=f.cycle, flop_index=f.flop_index, flop_name=f.flop_name
            )
            for f in faults
        ]
        result = run_campaign(
            circuit, bench, "mask_scan", faults=copies, oracle=oracle
        )
        assert result.num_faults == len(faults)

    def test_classification_identical_across_techniques(self, setup):
        circuit, bench, faults, oracle = setup
        counts = [
            run_campaign(
                circuit, bench, t, faults=faults, oracle=oracle
            ).dictionary.counts()
            for t in ("mask_scan", "state_scan", "time_multiplexed")
        ]
        assert counts[0] == counts[1] == counts[2]

    def test_summary_text(self, setup):
        circuit, bench, faults, oracle = setup
        result = run_campaign(
            circuit, bench, "mask_scan", faults=faults, oracle=oracle
        )
        text = result.summary()
        assert "mask_scan" in text and "us/fault" in text


class TestCycleAccounting:
    def test_mask_scan_exact_cycles_all_latent(self):
        """With a never-failing, never-vanishing circuit the formula is
        exact: prologue + per fault (setup + T + verdict)."""
        sticky = build_sticky()
        bench = constant_testbench(sticky, 10, value=0)
        faults = [SeuFault(cycle=c, flop_index=0) for c in range(10)]
        oracle = grade_faults(sticky, bench, faults)
        result = run_campaign(
            sticky, bench, "mask_scan", faults=faults, oracle=oracle
        )
        expected = 10 + 10 * (MASK_PROGRAM_CYCLES + 10 + VERDICT_WRITE_CYCLES)
        assert result.total_cycles == expected

    def test_state_scan_exact_cycles_all_latent(self):
        sticky = build_sticky()
        bench = constant_testbench(sticky, 10, value=0)
        faults = [SeuFault(cycle=c, flop_index=0) for c in range(10)]
        oracle = grade_faults(sticky, bench, faults)
        result = run_campaign(
            sticky, bench, "state_scan", faults=faults, oracle=oracle
        )
        n = sticky.num_ffs
        per_fault = sum(
            n + STATE_LOAD_CYCLES + (10 - c) + VERDICT_WRITE_CYCLES
            for c in range(10)
        )
        assert result.total_cycles == 10 + per_fault

    def test_time_mux_exact_cycles_all_latent(self):
        sticky = build_sticky()
        bench = constant_testbench(sticky, 10, value=0)
        faults = [SeuFault(cycle=c, flop_index=0) for c in range(10)]
        oracle = grade_faults(sticky, bench, faults)
        result = run_campaign(
            sticky, bench, "time_multiplexed", faults=faults, oracle=oracle
        )
        per_fault = sum(
            MASK_PROGRAM_CYCLES
            + STATE_LOAD_CYCLES
            + 2 * ((10 - 1) - c + 1)
            + VERDICT_WRITE_CYCLES
            for c in range(10)
        )
        assert result.total_cycles == 2 * 10 + per_fault

    def test_failure_early_exit_shortens_mask_scan(self, setup):
        circuit, bench, faults, oracle = setup
        result = run_campaign(
            circuit, bench, "mask_scan", faults=faults, oracle=oracle
        )
        # failures stop before T, so run cycles < faults * T
        assert result.breakdown.run < len(faults) * bench.num_cycles

    def test_time_mux_run_cycles_track_latency(self, setup):
        circuit, bench, faults, oracle = setup
        result = run_campaign(
            circuit, bench, "time_multiplexed", faults=faults, oracle=oracle
        )
        dictionary = result.dictionary
        expected_run = 2 * sum(
            min(
                record.fail_cycle if record.fail_cycle != -1 else bench.num_cycles - 1,
                record.vanish_cycle if record.vanish_cycle != -1 else bench.num_cycles - 1,
                bench.num_cycles - 1,
            )
            - record.fault.cycle
            + 1
            for record in dictionary
        )
        assert result.breakdown.run == expected_run


class TestTiming:
    def test_time_follows_clock(self, setup):
        circuit, bench, faults, oracle = setup
        slow = BoardModel("slow", 1e6, VIRTEX_2000E, 1000.0)
        fast = BoardModel("fast", 100e6, VIRTEX_2000E, 1000.0)
        slow_result = run_campaign(
            circuit, bench, "mask_scan", board=slow, faults=faults, oracle=oracle
        )
        fast_result = run_campaign(
            circuit, bench, "mask_scan", board=fast, faults=faults, oracle=oracle
        )
        assert slow_result.total_cycles == fast_result.total_cycles
        ratio = slow_result.timing.seconds / fast_result.timing.seconds
        assert ratio == pytest.approx(100.0)

    def test_us_per_fault_consistent(self, setup):
        circuit, bench, faults, oracle = setup
        result = run_campaign(
            circuit, bench, "state_scan", faults=faults, oracle=oracle
        )
        expected = result.timing.seconds * 1e6 / len(faults)
        assert result.timing.us_per_fault == pytest.approx(expected)

    def test_default_board_is_rc1000(self, setup):
        circuit, bench, faults, oracle = setup
        result = run_campaign(
            circuit, bench, "mask_scan", faults=faults, oracle=oracle
        )
        assert result.timing.board is RC1000
        assert RC1000.clock_hz == 25e6


class TestOrdering:
    """The paper's qualitative Table-2 facts on a b14-shaped workload."""

    def test_time_mux_fastest_on_processor_shape(self):
        from repro.circuits.generators import build_scaled_processor

        circuit = build_scaled_processor(48)
        bench = random_testbench(circuit, 60, seed=3)
        faults = exhaustive_fault_list(circuit, 60)
        oracle = grade_faults(circuit, bench, faults)
        cycles = {
            t: run_campaign(
                circuit, bench, t, faults=faults, oracle=oracle
            ).total_cycles
            for t in ("mask_scan", "state_scan", "time_multiplexed")
        }
        assert cycles["time_multiplexed"] < cycles["mask_scan"]
        assert cycles["time_multiplexed"] < cycles["state_scan"]

    def test_state_scan_loses_when_flops_exceed_cycles(self):
        # the b14 situation: N > T
        circuit = build_shift_register(30)
        bench = random_testbench(circuit, 15, seed=3)
        faults = exhaustive_fault_list(circuit, 15)
        oracle = grade_faults(circuit, bench, faults)
        mask = run_campaign(
            circuit, bench, "mask_scan", faults=faults, oracle=oracle
        ).total_cycles
        state = run_campaign(
            circuit, bench, "state_scan", faults=faults, oracle=oracle
        ).total_cycles
        assert state > mask
