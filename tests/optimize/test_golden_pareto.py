"""Golden snapshot of the b04 selective-hardening Pareto report.

The acceptance-criteria run — ``repro optimize --circuit b04
--max-ff-overhead 100`` — is fully deterministic (seeded sampling,
seeded annealing, memoized evaluation), so its rendered report is
pinned byte-for-byte. Any change to the ranking, the search schedule,
the grading path or the table layout fails here loudly instead of
drifting silently.

To refresh after an *intentional* change: delete
``tests/golden/pareto_b04.txt`` and re-run with ``REPRO_REGEN_GOLDEN=1``.
"""

import io
import os
from contextlib import redirect_stdout
from pathlib import Path

from repro.run.cli import main

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "golden" / "pareto_b04.txt"
)


def test_b04_pareto_report_matches_golden():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(
            [
                "optimize",
                "--circuit", "b04",
                "--max-ff-overhead", "100",
                "--no-store",
                "--quiet",
            ]
        )
    assert code == 0
    actual = buffer.getvalue()
    assert "beats full tmr" in actual, (
        "no point dominates the full-TMR anchor — the mixed-stack "
        "search regressed"
    )
    if os.environ.get("REPRO_REGEN_GOLDEN") and not GOLDEN_PATH.exists():
        GOLDEN_PATH.write_text(actual, encoding="utf-8")
    golden = GOLDEN_PATH.read_text(encoding="utf-8")
    assert actual == golden, (
        "the b04 Pareto report drifted from pareto_b04.txt; if the "
        "change is intentional, delete the golden file and regenerate "
        "with REPRO_REGEN_GOLDEN=1"
    )
