"""HardeningAssignment: canonical layer stacks and spec construction."""

import pytest

from repro.errors import HardeningError
from repro.optimize import HardeningAssignment
from repro.run.spec import CampaignSpec


class TestConstruction:
    def test_plain(self):
        plain = HardeningAssignment.plain()
        assert plain.is_plain
        assert plain.label == "plain"
        assert plain.circuit_name("b04") == "b04"
        assert plain.protected_flops() == ()

    def test_single_full_scheme(self):
        full = HardeningAssignment.single("tmr")
        assert full.label == "tmr"
        assert full.circuit_name("b04") == "hardened:tmr:b04"

    def test_subset_is_canonicalised(self):
        forward = HardeningAssignment.single("tmr", ["b", "a", "b"])
        backward = HardeningAssignment.single("tmr", ["a", "b"])
        assert forward == backward
        assert forward.circuit_name("b02") == "hardened:tmr@a+b:b02"

    def test_wrapped_stacks_outermost_last(self):
        mixed = HardeningAssignment.single("parity", ["c", "d"]).wrapped(
            "tmr", ["a"]
        )
        assert mixed.label == "tmr@1ff+parity@2ff"
        assert (
            mixed.circuit_name("b02")
            == "hardened:tmr@a:hardened:parity@c+d:b02"
        )
        assert mixed.protected_flops() == ("a", "c", "d")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(Exception, match="bogus"):
            HardeningAssignment.single("bogus")


class TestSpecFor:
    def test_spec_for_builds_hardened_spec(self):
        base = CampaignSpec(circuit="b02", technique="mask_scan")
        spec = HardeningAssignment.single("tmr", ["ff$phase[0]"]).spec_for(
            base
        )
        assert spec.hardening == "tmr"
        assert spec.hardening_flops == ("ff$phase[0]",)
        assert spec.base_circuit == "b02"
        # everything but the protection is inherited
        assert spec.technique == base.technique
        assert spec.seed == base.seed

    def test_spec_for_rejects_hardened_base(self):
        base = CampaignSpec(circuit="hardened:tmr:b02", technique="mask_scan")
        with pytest.raises(HardeningError, match="plain"):
            HardeningAssignment.single("parity").spec_for(base)
