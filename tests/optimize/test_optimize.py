"""The selective-hardening explorer end to end on b02 (4 flops, cheap):
determinism, Pareto-front soundness, the unprotected-failure metric and
the CLI surface."""

import json

import pytest

from repro.errors import CampaignError
from repro.optimize import (
    Evaluator,
    HardeningAssignment,
    SearchConfig,
    explore,
    pareto_report,
)
from repro.run.cli import main
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec


def _base(**overrides):
    fields = {
        "circuit": "b02",
        "technique": "mask_scan",
        "num_cycles": 16,
        "sample": 40,
    }
    fields.update(overrides)
    return CampaignSpec(**fields)


def _explore(config=None, runner=None, base=None):
    base = base or _base()
    evaluator = Evaluator(base, runner=runner or CampaignRunner())
    result = explore(evaluator, config or SearchConfig(max_ff_overhead=150.0))
    return base, result


class TestDeterminism:
    def test_same_seed_same_front(self):
        base1, result1 = _explore()
        base2, result2 = _explore()
        report1 = pareto_report(base1, result1).to_json()
        report2 = pareto_report(base2, result2).to_json()
        assert report1 == report2

    def test_workers_bit_exact_with_serial(self):
        base1, result1 = _explore(runner=CampaignRunner(workers=1))
        base2, result2 = _explore(
            runner=CampaignRunner(workers=2, shards=4)
        )
        assert (
            pareto_report(base1, result1).to_json()
            == pareto_report(base2, result2).to_json()
        )


class TestSearch:
    def test_front_is_mutually_non_dominated(self):
        _, result = _explore()
        front = result.front()
        assert front
        for point in front:
            assert not any(
                other.dominates(point) for other in front if other is not point
            )

    def test_anchors_are_always_evaluated(self):
        _, result = _explore()
        labels = {point.label for point in result.points}
        assert "plain" in labels
        assert "tmr" in labels

    def test_best_respects_ff_budget(self):
        config = SearchConfig(max_ff_overhead=100.0)
        _, result = _explore(config=config)
        best = result.best()
        assert best is not None
        assert best.ff_overhead_pct <= 100.0
        # full TMR (+200% FFs) can never be the pick under a 100% cap
        assert best.assignment.layers != (("tmr", None),)

    def test_target_rate_picks_cheapest_sufficient_point(self):
        config = SearchConfig(target_rate=50.0)
        _, result = _explore(config=config)
        best = result.best()
        assert best is not None
        assert best.failure_rate_pct <= 50.0
        cheaper = [
            point
            for point in result.points
            if point.failure_rate_pct <= 50.0 and point.ffs < best.ffs
        ]
        assert not cheaper

    def test_config_validation(self):
        with pytest.raises(CampaignError, match="bogus"):
            SearchConfig(schemes=("bogus",))
        with pytest.raises(CampaignError, match="at least one"):
            SearchConfig(schemes=())
        with pytest.raises(CampaignError, match="sa_iterations"):
            SearchConfig(sa_iterations=-1)


class TestUnprotectedMetric:
    def test_detection_scheme_failures_count_as_detected(self):
        base = _base(sample=None)  # exhaustive: rates are exact
        evaluator = Evaluator(base, runner=CampaignRunner())
        plain = evaluator.evaluate(HardeningAssignment.plain())
        parity = evaluator.evaluate(HardeningAssignment.single("parity"))
        # full parity covers every flop plus its own stored bit: every
        # failure is flagged, so nothing is left unprotected …
        assert parity.failure_rate_pct == 0.0
        assert parity.detected_rate_pct > 0.0
        # … while the plain circuit detects nothing
        assert plain.detected_rate_pct == 0.0
        assert plain.failure_rate_pct > 0.0

    def test_masking_scheme_has_no_detected_share(self):
        base = _base(sample=None)
        evaluator = Evaluator(base, runner=CampaignRunner())
        tmr = evaluator.evaluate(HardeningAssignment.single("tmr"))
        assert tmr.detected_rate_pct == 0.0
        assert tmr.failure_rate_pct == 0.0

    def test_mixed_stack_dominates_full_tmr(self):
        base, result = _explore()
        report = pareto_report(base, result)
        mixed = [
            point
            for point in result.points
            if len(point.assignment.layers) > 1
        ]
        assert mixed, "the search evaluated no mixed stacks"
        assert any(report.dominates_full_tmr(point) for point in mixed)


class TestEvaluator:
    def test_memoization_shares_work(self):
        evaluator = Evaluator(_base(), runner=CampaignRunner())
        first = evaluator.evaluate(HardeningAssignment.single("tmr"))
        again = evaluator.evaluate(HardeningAssignment.single("tmr"))
        assert first is again
        assert evaluator.evaluations == 1

    def test_ranking_covers_every_flop(self):
        evaluator = Evaluator(_base(), runner=CampaignRunner())
        ranking = evaluator.rank_flops()
        names = {rank.flop for rank in ranking}
        assert names == set(_base().build_netlist().ff_names())
        rates = [rank.failure_rate for rank in ranking]
        assert rates == sorted(rates, reverse=True)


class TestCli:
    def test_optimize_json_schema(self, capsys):
        code = main(
            [
                "optimize",
                "--circuit", "b02",
                "--cycles", "16",
                "--sample", "40",
                "--max-ff-overhead", "150",
                "--no-store",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["circuit"] == "b02"
        assert payload["budget"]["max_ff_overhead_pct"] == 150.0
        assert payload["front"], "empty Pareto front"
        assert payload["best"] is not None
        assert payload["best"]["within_budget"]
        for point in payload["points"]:
            for key in (
                "label", "layers", "campaign_id", "failure_rate_pct",
                "detected_rate_pct", "ffs", "luts", "ff_overhead_pct",
                "on_front", "within_budget", "dominates_full_tmr",
            ):
                assert key in point
        assert payload["ranking"]

    def test_optimize_text_report(self, capsys):
        code = main(
            [
                "optimize",
                "--circuit", "b02",
                "--cycles", "16",
                "--sample", "40",
                "--budget-ffs", "150%",
                "--no-store",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Selective-hardening Pareto front — b02" in out
        assert "budget: FF overhead <= 150%" in out
        assert "best:" in out
