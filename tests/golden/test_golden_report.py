"""Golden snapshots of the ``python -m repro report`` tables.

Table 1 (synthesis/area) and Table 2 (emulation timing) are fully
deterministic — modelled cycle counts at a modelled clock, no wall-time
— so their rendered text is pinned byte-for-byte for one builtin (b04)
and one imported (corpus:s298) circuit. Any change to LUT mapping,
instrumentation overhead, cycle accounting, table layout or number
formatting fails here loudly instead of drifting silently.

To refresh after an *intentional* change: delete the files under
``tests/golden/`` and re-run this module with ``REPRO_REGEN_GOLDEN=1``.
"""

import io
import os
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.run.cli import main

GOLDEN_DIR = Path(__file__).resolve().parent

CASES = [
    ("b04", "b04"),
    ("corpus:s298", "s298"),
]
TABLES = [
    ("Table 1 —", "table1"),
    ("Table 2 —", "table2"),
]


def _extract_block(text: str, title: str) -> str:
    """The contiguous non-blank block starting at the table title."""
    lines = text.splitlines()
    for index, line in enumerate(lines):
        if line.startswith(title):
            block = []
            for candidate in lines[index:]:
                if not candidate.strip():
                    break
                block.append(candidate.rstrip())
            return "\n".join(block) + "\n"
    raise AssertionError(f"no block titled {title!r} in report output")


@pytest.fixture(scope="module")
def report_outputs():
    """One full report run per circuit, shared by both table checks."""
    outputs = {}
    for circuit, _ in CASES:
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(
                [
                    "report",
                    "--circuit", circuit,
                    "--no-crossover",
                    "--no-store",
                    "--quiet",
                ]
            )
        assert code == 0
        outputs[circuit] = buffer.getvalue()
    return outputs


@pytest.mark.parametrize("circuit, slug", CASES)
@pytest.mark.parametrize("title, label", TABLES)
def test_report_table_matches_golden(report_outputs, circuit, slug, title, label):
    golden_path = GOLDEN_DIR / f"report_{slug}_{label}.txt"
    actual = _extract_block(report_outputs[circuit], title)
    if os.environ.get("REPRO_REGEN_GOLDEN") and not golden_path.exists():
        golden_path.write_text(actual, encoding="utf-8")
    golden = golden_path.read_text(encoding="utf-8")
    assert actual == golden, (
        f"{label} for {circuit} drifted from {golden_path.name}; if the "
        "change is intentional, delete the golden file and regenerate "
        "with REPRO_REGEN_GOLDEN=1"
    )
