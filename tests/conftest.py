"""Shared fixtures: small deterministic circuits and testbenches."""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.rtl import RtlModule, const, mux
from repro.sim.vectors import random_testbench


def build_toggle():
    """1-flop toggle: q alternates every cycle, output mirrors q."""
    b = NetlistBuilder("toggle")
    q = b.dff("q_next", q="q", init=0, name="ff$q")
    b.inv(q, out="q_next")
    b.output_net("out", q)
    # toggle has no inputs; add one so testbenches are non-degenerate
    unused = b.input("tick")
    b.output_net("tick_echo", unused)
    return b.build()


def build_counter(width: int = 4):
    """Enabled counter with value and wrap outputs."""
    m = RtlModule(f"counter{width}")
    enable = m.input("enable", 1)
    count = m.register("count", width, init=0)
    m.next(count, mux(enable[0], count, count + const(width, 1)))
    m.output("value", count)
    m.output("wrap", count == const(width, (1 << width) - 1))
    return m.elaborate()


def build_shift_register(depth: int = 6):
    """Serial-in serial-out shift register (silent-prone faults)."""
    b = NetlistBuilder(f"shift{depth}")
    serial_in = b.input("si")
    previous = serial_in
    for index in range(depth):
        previous = b.dff(previous, q=f"s[{index}]", init=0, name=f"ff$s[{index}]")
    b.output_net("so", previous)
    return b.build()


def build_sticky():
    """A sticky error latch: once set, never clears (latent-prone)."""
    b = NetlistBuilder("sticky")
    trigger = b.input("trigger")
    held = b.netlist.fresh_net("held")
    q = b.dff(held, q="sticky_q", init=0, name="ff$sticky")
    b.or_(q, trigger, out=held)
    observe = b.input("observe")
    b.output_net("alarm", b.and_(q, observe))
    return b.build()


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache():
    """Point the on-disk artifact cache at a throwaway directory.

    Tests grade campaign-scale circuits (b14 and friends) whose compiled
    plans and golden traces would otherwise land in the user's real
    ``~/.cache/repro`` — pollution at best, cross-test coupling at
    worst. Session scope keeps cache *hits* within one test run
    exercised. Tests that set ``REPRO_CACHE_DIR`` themselves (the disk
    cache suite) override per-test via monkeypatch as usual.
    """
    if os.environ.get("REPRO_CACHE_DIR"):
        yield
        return
    with tempfile.TemporaryDirectory(prefix="repro-test-cache-") as root:
        os.environ["REPRO_CACHE_DIR"] = root
        try:
            yield
        finally:
            os.environ.pop("REPRO_CACHE_DIR", None)


@pytest.fixture
def toggle():
    return build_toggle()


@pytest.fixture
def counter():
    return build_counter()


@pytest.fixture
def shift_register():
    return build_shift_register()


@pytest.fixture
def sticky():
    return build_sticky()


@pytest.fixture
def counter_bench(counter):
    return random_testbench(counter, 24, seed=2)
