"""Documentation invariants: the generated CLI reference must match the
argparse tree, and relative links in the markdown must resolve."""

import os
import subprocess
import sys

REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))


def _run(script, *argv):
    return subprocess.run(
        [sys.executable, os.path.join(REPO, "scripts", script), *argv],
        cwd=REPO,
        capture_output=True,
        text=True,
    )


def test_cli_reference_is_not_stale():
    """docs/cli.md is generated; a committed copy that disagrees with
    `build_parser()` means someone changed the CLI without regenerating
    (`python scripts/gen_cli_docs.py`)."""
    result = _run("gen_cli_docs.py", "--check")
    assert result.returncode == 0, result.stderr or result.stdout


def test_cli_reference_mentions_every_top_level_command():
    with open(os.path.join(REPO, "docs", "cli.md"), encoding="utf-8") as fh:
        document = fh.read()
    for command in ("run", "sweep", "report", "bench", "worker",
                    "workers", "serve", "db", "query"):
        assert f"## `repro {command}`" in document, command


def test_markdown_links_resolve():
    docs = sorted(
        os.path.join("docs", name)
        for name in os.listdir(os.path.join(REPO, "docs"))
        if name.endswith(".md")
    )
    result = _run("check_links.py", "README.md", *docs)
    assert result.returncode == 0, result.stdout + result.stderr
