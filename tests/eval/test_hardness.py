"""The hardness-evaluation report (``eval/hardness.py``).

Covers the ISSUE acceptance bar directly: the b04 report shows TMR
converting >= 90% of the plain circuit's failing SEUs to non-failing
(here: all of them, to silent), area overhead per scheme, and bit-exact
rates across all three grading engines.
"""

import pytest

from repro.errors import CampaignError
from repro.eval.hardness import (
    DEFAULT_FAULT_MODELS,
    DEFAULT_SCHEMES,
    run_hardness_experiment,
)
from repro.faults.classify import FaultClass


@pytest.fixture(scope="module")
def b04_report():
    return run_hardness_experiment(
        "b04", schemes=("tmr", "dwc"), fault_models=("seu",)
    )


class TestB04Acceptance:
    def test_tmr_converts_failing_seus_to_silent(self, b04_report):
        reduction = b04_report.failure_reduction_pct("tmr", "seu")
        assert reduction >= 90.0
        tmr = b04_report.row("tmr")
        assert tmr.rates["seu"][FaultClass.SILENT] >= 90.0

    def test_plain_row_has_real_failures(self, b04_report):
        plain = b04_report.row(None)
        assert plain.rates["seu"][FaultClass.FAILURE] > 10.0
        assert plain.num_flops == 66

    def test_area_overhead_reported(self, b04_report):
        tmr = b04_report.row("tmr")
        assert tmr.overhead.ff_overhead_pct == pytest.approx(200.0)
        assert tmr.overhead.lut_overhead_pct > 0
        dwc = b04_report.row("dwc")
        assert dwc.overhead.ff_overhead_pct == pytest.approx(100.0)

    def test_render_contains_table_and_summary(self, b04_report):
        text = b04_report.render()
        assert "Hardness evaluation — b04" in text
        assert "hardened:tmr" in text
        assert "removes 100.0% of the plain seu failure rate" in text
        assert "detection coverage" in text

    def test_rates_sum_to_hundred(self, b04_report):
        for row in b04_report.rows:
            for rates in row.rates.values():
                assert sum(rates.values()) == pytest.approx(100.0)


class TestEngineAgreement:
    @pytest.mark.parametrize("engine", ("numpy", "bigint"))
    def test_rates_bit_exact_across_engines(self, engine):
        """The fused report is the reference; every engine must agree."""
        kwargs = dict(
            schemes=("tmr", "parity"), fault_models=("seu",), num_cycles=24
        )
        fused = run_hardness_experiment("b02", engine="fused", **kwargs)
        other = run_hardness_experiment("b02", engine=engine, **kwargs)
        for fused_row, other_row in zip(fused.rows, other.rows):
            assert fused_row.rates == other_row.rates
            assert fused_row.populations == other_row.populations


class TestReportShape:
    def test_defaults_are_sane(self):
        assert "tmr" in DEFAULT_SCHEMES
        assert "seu" in DEFAULT_FAULT_MODELS

    def test_sampled_report(self):
        report = run_hardness_experiment(
            "b02",
            schemes=("tmr",),
            fault_models=("seu", "stuck_at_1"),
            num_cycles=24,
            sample=50,
        )
        for row in report.rows:
            # samples is what was graded; populations the complete fault
            # set the sample was drawn from (the pre-fix code conflated
            # the two under --sample)
            assert row.samples["seu"] == 50
            assert row.populations["seu"] == row.num_flops * 24
            assert row.populations["seu"] > row.samples["seu"]
            for model in ("seu", "stuck_at_1"):
                estimates = row.estimates[model]
                for estimate in estimates.values():
                    assert estimate.trials == 50
                    assert estimate.half_width > 0
        rendered = report.render()
        assert "sample=50" in rendered
        assert "±" in rendered
        assert "Wilson 95% half-widths" in rendered

    def test_exhaustive_report_has_no_estimates(self):
        report = run_hardness_experiment(
            "b02", schemes=("tmr",), fault_models=("seu",), num_cycles=24
        )
        for row in report.rows:
            assert row.samples["seu"] == row.populations["seu"]
            assert not row.estimates
        assert "±" not in report.render()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(CampaignError, match="nope"):
            run_hardness_experiment("b02", schemes=("nope",))

    def test_empty_fault_models_rejected(self):
        with pytest.raises(CampaignError, match="at least one fault model"):
            run_hardness_experiment("b02", fault_models=())

    def test_failure_reduction_handles_zero_plain_rate(self):
        report = run_hardness_experiment(
            "b02", schemes=("tmr",), fault_models=("seu",), num_cycles=24
        )
        # b02 has real plain failures; synthesise the zero case directly
        plain = report.row(None)
        plain.rates["seu"][FaultClass.FAILURE] = 0.0
        tmr = report.row("tmr")
        tmr.rates["seu"][FaultClass.FAILURE] = 0.0
        assert report.failure_reduction_pct("tmr", "seu") == 0.0
        tmr.rates["seu"][FaultClass.FAILURE] = 5.0
        # no baseline to reduce: the metric is undefined, not +/-inf...
        assert report.failure_reduction_pct("tmr", "seu") is None
        # ...and render says so instead of printing '-inf%'
        assert "n/a for seu" in report.render()
        assert "-inf" not in report.render()

    def test_hardened_baseline_rejected(self):
        """The baseline must be plain: a hardened: name would silently
        grade the protected circuit as its own reference."""
        with pytest.raises(CampaignError, match="plain circuit name"):
            run_hardness_experiment("hardened:tmr:b02", schemes=("tmr",))
