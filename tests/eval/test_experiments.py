"""Tests for the experiment harness.

Full-scale b14 experiments run in benchmarks; here the same machinery is
exercised on reduced configurations (shorter testbenches, smaller sweep
grids) plus shape checks on the paper-claim validators.
"""

import pytest

from repro.circuits.itc99.b14 import b14_program_testbench, build_b14
from repro.eval.classification import run_classification_experiment
from repro.eval.crossover import run_crossover_experiment
from repro.eval.figure1 import INSTRUMENT_FLOP_ROLES, run_figure1_census
from repro.eval.paper import (
    PAPER_B14,
    PAPER_BASELINES,
    PAPER_CLASSIFICATION,
    PAPER_TABLE1,
    PAPER_TABLE2,
)
from repro.eval.speedup import run_speedup_experiment
from repro.eval.table1 import run_table1_experiment
from repro.eval.table2 import run_table2_experiment
from tests.conftest import build_counter


@pytest.fixture(scope="module")
def small_b14_setup():
    """b14 with a short testbench: full pipeline, minutes -> seconds."""
    circuit = build_b14()
    bench = b14_program_testbench(circuit, 24, seed=1)
    return circuit, bench


class TestPaperConstants:
    def test_table1_has_all_techniques(self):
        assert set(PAPER_TABLE1) == {
            "original", "mask_scan", "state_scan", "time_multiplexed"
        }

    def test_table2_figures(self):
        assert PAPER_TABLE2["time_multiplexed"]["us_per_fault"] == 0.58
        assert PAPER_TABLE2["state_scan"]["emulation_ms"] == 386.40

    def test_classification_sums_to_100(self):
        assert sum(PAPER_CLASSIFICATION.values()) == pytest.approx(100.0)

    def test_scale(self):
        assert PAPER_B14["faults"] == 34_400
        assert PAPER_B14["flip_flops"] * PAPER_B14["stimulus_vectors"] == 34_400


class TestTable1:
    def test_rows_and_overheads(self, small_b14_setup):
        circuit, bench = small_b14_setup
        result = run_table1_experiment(circuit, num_cycles=bench.num_cycles)
        assert set(result.summaries) == {
            "mask_scan", "state_scan", "time_multiplexed"
        }
        for summary in result.summaries.values():
            assert summary.modified.luts > result.original.luts
            assert summary.system.luts > summary.modified.luts
        text = result.render()
        assert "Table 1" in text and "paper reference" in text

    def test_ff_ratios_match_paper_structure(self, small_b14_setup):
        circuit, bench = small_b14_setup
        result = run_table1_experiment(circuit, num_cycles=bench.num_cycles)
        n = circuit.num_ffs
        assert result.summaries["mask_scan"].modified.ffs == 2 * n
        assert result.summaries["state_scan"].modified.ffs == 2 * n
        assert result.summaries["time_multiplexed"].modified.ffs == 4 * n

    def test_works_on_other_circuits(self, counter):
        result = run_table1_experiment(counter, num_cycles=16)
        assert result.circuit == counter.name


class TestTable2:
    def test_ordering_matches_paper(self, small_b14_setup):
        circuit, bench = small_b14_setup
        result = run_table2_experiment(circuit, bench)
        assert result.fastest() == "time_multiplexed"
        mask = result.campaigns["mask_scan"].timing.cycles_per_fault
        state = result.campaigns["state_scan"].timing.cycles_per_fault
        tmux = result.campaigns["time_multiplexed"].timing.cycles_per_fault
        # the paper's b14 regime: N > T, so state-scan slowest
        assert tmux < mask < state

    def test_render_includes_paper_numbers(self, small_b14_setup):
        circuit, bench = small_b14_setup
        text = run_table2_experiment(circuit, bench).render()
        assert "141.11" in text  # paper's mask-scan ms


class TestClassification:
    def test_shape_on_b14(self, small_b14_setup):
        circuit, bench = small_b14_setup
        result = run_classification_experiment(circuit, bench)
        pct = result.percentages
        assert sum(pct.values()) == pytest.approx(100.0)
        # processor shape: failures and silents dominate, latent residual
        assert pct["failure"] > 20
        assert pct["silent"] > 15
        # short benches inflate latent counts (less time to flush or fail);
        # the full 160-cycle run lands near the paper's 4.4 %
        assert pct["latent"] < 45

    def test_latency_stats_positive(self, small_b14_setup):
        circuit, bench = small_b14_setup
        result = run_classification_experiment(circuit, bench)
        assert result.mean_failure_latency() >= 0
        assert result.mean_silent_latency() >= 0

    def test_render(self, small_b14_setup):
        circuit, bench = small_b14_setup
        text = run_classification_experiment(circuit, bench).render()
        assert "49.2" in text  # paper reference column


class TestSpeedup:
    def test_autonomous_beats_baselines(self, small_b14_setup):
        circuit, bench = small_b14_setup
        result = run_speedup_experiment(circuit, bench)
        for technique in ("mask_scan", "state_scan", "time_multiplexed"):
            assert result.speedup(technique, "fault simulation") > 10
            assert result.speedup(technique, "host-driven emulation [2]") > 1

    def test_baseline_magnitudes(self, small_b14_setup):
        circuit, bench = small_b14_setup
        result = run_speedup_experiment(circuit, bench)
        sim_us = result.us_per_fault["fault simulation"]
        host_us = result.us_per_fault["host-driven emulation [2]"]
        # same orders of magnitude as the paper's 1300 / 100
        assert 100 < sim_us < 20_000
        assert 10 < host_us < 1_000
        assert PAPER_BASELINES["fault_simulation_us_per_fault"] == 1300.0

    def test_render(self, small_b14_setup):
        circuit, bench = small_b14_setup
        text = run_speedup_experiment(circuit, bench).render()
        assert "speedup" in text


class TestCrossover:
    def test_small_sweep_claims(self):
        result = run_crossover_experiment(
            flop_budgets=(32, 64), cycle_counts=(24, 256), seed=5
        )
        claims = result.paper_claims_hold()
        assert claims["time_mux_always_fastest"]
        assert claims["state_scan_wins_when_cycles_exceed_flops"]

    def test_render_has_all_cells(self):
        result = run_crossover_experiment(
            flop_budgets=(32,), cycle_counts=(24, 96), seed=5
        )
        assert len(result.points) == 2
        assert "state-scan wins" in result.render()


class TestFigure1:
    def test_census_matches_figure(self):
        census = run_figure1_census()
        assert census.flops_per_bit == {role: 1 for role in INSTRUMENT_FLOP_ROLES}
        assert census.gates_added_per_bit > 4
        assert "tm_state_diff" in census.control_outputs

    def test_render(self):
        text = run_figure1_census().render()
        assert "golden flip-flop" in text
