"""Tests for the eval layer's shared scenario resolution."""

from repro.circuits.itc99.b06 import build_b06
from repro.eval.context import resolve_scenario
from repro.sim.vectors import random_testbench


class TestResolveScenario:
    def test_name_only_takes_spec_path(self):
        scenario = resolve_scenario(circuit="b06", num_cycles=10)
        assert scenario.spec is not None
        assert scenario.testbench.num_cycles == 10

    def test_explicit_testbench_alone_is_honoured(self):
        """An explicit testbench without a netlist must be graded as
        given (against the named circuit), not silently replaced by the
        spec's default stimulus."""
        circuit = build_b06()
        bench = random_testbench(circuit, 8, seed=42)
        scenario = resolve_scenario(testbench=bench, circuit="b06")
        assert scenario.spec is None
        assert scenario.testbench is bench
        assert scenario.testbench.num_cycles == 8
        assert len(scenario.faults) == scenario.netlist.num_ffs * 8

    def test_explicit_netlist_gets_default_bench(self):
        circuit = build_b06()
        scenario = resolve_scenario(netlist=circuit, num_cycles=9)
        assert scenario.spec is None
        assert scenario.testbench.num_cycles == 9

    def test_b14_default_matches_spec_rule(self):
        """The explicit-netlist path and the spec path agree on what the
        default b14 stimulus is."""
        named = resolve_scenario(circuit="b14", num_cycles=12)
        explicit = resolve_scenario(
            netlist=named.netlist, num_cycles=12
        )
        assert explicit.testbench.vectors == named.testbench.vectors
