"""Tests for the sampled-vs-exhaustive comparison table."""

import pytest

from repro.faults.classify import FaultClass, classification_counts
from repro.eval.sampling_error import (
    SamplingErrorReport,
    sampling_error_report,
)
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec


@pytest.fixture(scope="module")
def report() -> SamplingErrorReport:
    return sampling_error_report(
        circuits=("b01", "b06"),
        samples=(30, 60),
        num_cycles=20,
        seed=1,
    )


class TestReportStructure:
    def test_rows_cover_circuits_samples_classes(self, report):
        assert len(report.rows) == 2 * 2 * 3
        assert {row.circuit for row in report.rows} == {"b01", "b06"}
        assert {row.sample for row in report.rows} == {30, 60}
        assert {row.fault_class for row in report.rows} == set(FaultClass)

    def test_exhaustive_rates_match_direct_grading(self, report):
        spec = CampaignSpec(
            circuit="b01", technique="time_multiplexed", num_cycles=20, seed=1
        )
        oracle = CampaignRunner().grade(spec)
        counts = classification_counts(oracle.verdicts())
        total = oracle.num_faults
        for row in report.rows:
            if row.circuit != "b01":
                continue
            assert row.population == total
            assert row.exhaustive_rate == pytest.approx(
                counts[row.fault_class] / total
            )

    def test_estimates_are_sane(self, report):
        for row in report.rows:
            low, high = row.estimate.interval
            assert 0.0 <= low <= row.estimate.proportion <= high <= 1.0
            assert row.error <= 1.0
            assert row.covered == (low <= row.exhaustive_rate <= high)

    def test_most_intervals_cover_the_truth(self, report):
        # 12 rows at 95% nominal: demanding >= 2/3 keeps the test stable
        # while still catching systematically broken intervals.
        assert report.coverage() >= 0.66

    def test_render_contains_every_row(self, report):
        rendered = report.render()
        assert "Sampling error" in rendered
        assert rendered.count("b01") == 6
        assert "interval coverage" in rendered

    def test_oversized_samples_skipped(self):
        tiny = sampling_error_report(
            circuits=("b01",), samples=(10, 10_000), num_cycles=10
        )
        assert {row.sample for row in tiny.rows} == {10}


class TestModelVariants:
    def test_stuck_at_report(self):
        report = sampling_error_report(
            circuits=("b01",),
            samples=(25,),
            fault_model="stuck_at_0",
            sampling="stratified",
            num_cycles=16,
            ci_method="clopper_pearson",
        )
        assert report.fault_model == "stuck_at_0"
        assert len(report.rows) == 3
        for row in report.rows:
            assert row.estimate.method == "clopper_pearson"
