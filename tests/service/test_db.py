"""ResultsDB: schema versioning, JSONL import fidelity, WAL concurrency,
and the cross-campaign aggregates."""

import os
import sqlite3
import threading

import pytest

from repro.errors import ServiceError
from repro.faults.classify import classification_counts
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec
from repro.run.store import ResultsStore, discover_stores
from repro.service.db import SCHEMA_VERSION, ResultsDB, spec_from_manifest


def _spec(**overrides):
    fields = {
        "circuit": "b04",
        "technique": "time_multiplexed",
        "sample": 30,
        "num_cycles": 48,
    }
    fields.update(overrides)
    return CampaignSpec(**fields)


def _graded_store(tmp_path, spec):
    """Grade one campaign into a JSONL store; returns its oracle."""
    with CampaignRunner(workers=0, store_root=str(tmp_path / "runs")) as runner:
        return runner.grade(spec)


# ----------------------------------------------------------------------
# schema lifecycle
# ----------------------------------------------------------------------
class TestSchema:
    def test_creates_tables_and_version(self, tmp_path):
        path = str(tmp_path / "svc.db")
        with ResultsDB(path) as db:
            assert db.counts() == {
                "campaigns": 0, "shards": 0, "fault_outcomes": 0
            }
        conn = sqlite3.connect(path)
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        conn.close()
        assert version == SCHEMA_VERSION

    def test_reopen_is_idempotent(self, tmp_path):
        path = str(tmp_path / "svc.db")
        ResultsDB(path).close()
        with ResultsDB(path) as db:
            assert db.counts()["campaigns"] == 0

    def test_refuses_other_schema_version(self, tmp_path):
        path = str(tmp_path / "svc.db")
        ResultsDB(path).close()
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 7}")
        conn.close()
        with pytest.raises(ServiceError, match="schema version"):
            ResultsDB(path)

    def test_refuses_foreign_sqlite_file(self, tmp_path):
        path = str(tmp_path / "other.db")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE unrelated (x)")
        conn.commit()
        conn.close()
        with pytest.raises(ServiceError, match="not a repro results"):
            ResultsDB(path)


# ----------------------------------------------------------------------
# submission lifecycle
# ----------------------------------------------------------------------
class TestSubmit:
    def test_submit_is_idempotent(self, tmp_path):
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            spec = _spec()
            created, row = db.submit(spec)
            assert created and row["status"] == "queued"
            created, row = db.submit(spec)
            assert not created
            assert row["campaign_id"] == spec.campaign_id

    def test_failed_campaign_requeues_on_resubmit(self, tmp_path):
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            spec = _spec()
            db.submit(spec)
            db.mark_failed(spec.campaign_id, "boom")
            created, row = db.submit(spec)
            assert created
            assert row["status"] == "queued"
            assert row["error"] is None

    def test_cancel_states(self, tmp_path):
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            spec = _spec()
            db.submit(spec)
            assert db.request_cancel(spec.campaign_id) == "cancelled"
            # terminal: nothing to cancel
            assert db.request_cancel(spec.campaign_id) is None
            with pytest.raises(ServiceError, match="unknown campaign"):
                db.request_cancel("nope-0000000000")

    def test_running_cancel_sets_flag(self, tmp_path):
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            spec = _spec()
            db.submit(spec)
            db.mark_running(spec.campaign_id)
            assert db.request_cancel(spec.campaign_id) == "cancelling"
            assert db.cancel_requested(spec.campaign_id)
            db.mark_cancelled(spec.campaign_id)
            assert db.campaign(spec.campaign_id)["status"] == "cancelled"


# ----------------------------------------------------------------------
# JSONL -> SQLite import
# ----------------------------------------------------------------------
class TestImport:
    def test_round_trip_is_bit_exact(self, tmp_path):
        """Imported outcome counts equal the ResultsStore's oracle."""
        spec = _spec()
        oracle = _graded_store(tmp_path, spec)
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            results = db.import_root(str(tmp_path / "runs"))
            assert [r["action"] for r in results] == ["imported"]
            row = db.campaign(spec.campaign_id)
            assert row["status"] == "imported"
            assert row["oracle_digest"] == oracle.outcome_digest()
            assert row["num_faults"] == oracle.num_faults
            expected = {
                cls.value: count
                for cls, count in classification_counts(
                    oracle.verdicts()
                ).items()
            }
            assert db.class_counts(spec.campaign_id) == expected
            # per-fault rows carry the exact cycles, not just verdicts
            assert db.counts()["fault_outcomes"] == oracle.num_faults

    def test_reimport_skips(self, tmp_path):
        spec = _spec()
        _graded_store(tmp_path, spec)
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            db.import_root(str(tmp_path / "runs"))
            again = db.import_root(str(tmp_path / "runs"))
            assert [r["action"] for r in again] == ["exists"]

    def test_incomplete_store_is_refused(self, tmp_path):
        spec = _spec()
        _graded_store(tmp_path, spec)
        store_dir = tmp_path / "runs" / spec.campaign_id
        shards = (store_dir / "shards.jsonl").read_text().splitlines()
        (store_dir / "shards.jsonl").write_text("\n".join(shards[:-1]) + "\n")
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            (result,) = db.import_root(str(tmp_path / "runs"))
            assert result["action"] == "refused"
            assert "incomplete" in result["reason"]

    def test_renamed_store_is_refused(self, tmp_path):
        """A store whose id cannot be reproduced from its manifest is
        refused — the fault population is no longer attributable."""
        spec = _spec()
        _graded_store(tmp_path, spec)
        root = tmp_path / "runs"
        os.rename(root / spec.campaign_id, root / "b04-0123456789")
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            (result,) = db.import_root(str(root))
            assert result["action"] == "refused"
            assert "not reproducible" in result["reason"]

    def test_spec_from_manifest_reconstructs_identity(self, tmp_path):
        spec = _spec(seed=3, sampling="stratified")
        _graded_store(tmp_path, spec)
        (store,) = discover_stores(str(tmp_path / "runs"))
        rebuilt = spec_from_manifest(store.manifest())
        assert rebuilt.campaign_id == spec.campaign_id
        assert rebuilt.oracle_key() == spec.oracle_key()


# ----------------------------------------------------------------------
# concurrency (WAL)
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_two_connections_write_concurrently(self, tmp_path):
        """Two ResultsDB instances on one file (the service process and
        a `repro db import` side by side) interleave writes under WAL
        without 'database is locked' failures."""
        path = str(tmp_path / "svc.db")
        ResultsDB(path).close()
        errors = []

        def writer(offset):
            try:
                with ResultsDB(path) as db:
                    for index in range(20):
                        spec = _spec(seed=offset * 100 + index)
                        db.submit(spec)
                        db.mark_running(spec.campaign_id)
                        db.update_progress(spec.campaign_id, 1, 4)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(n,)) for n in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        with ResultsDB(path) as db:
            assert db.counts()["campaigns"] == 40

    def test_reader_sees_writes_from_other_connection(self, tmp_path):
        path = str(tmp_path / "svc.db")
        writer = ResultsDB(path)
        reader = ResultsDB(path)
        spec = _spec()
        writer.submit(spec)
        assert reader.campaign(spec.campaign_id)["status"] == "queued"
        writer.close()
        reader.close()


# ----------------------------------------------------------------------
# cross-campaign queries
# ----------------------------------------------------------------------
class TestQueries:
    def test_flop_failure_rate_pools_across_campaigns(self, tmp_path):
        """The acceptance-criteria aggregate: per-flop failure rate
        across several campaigns of one circuit — a query the
        per-campaign JSONL layout cannot answer without rebuilding every
        scenario."""
        specs = [_spec(seed=seed) for seed in (0, 1, 2)]
        oracles = {}
        for spec in specs:
            oracles[spec.campaign_id] = _graded_store(tmp_path, spec)
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            results = db.import_root(str(tmp_path / "runs"))
            assert all(r["action"] == "imported" for r in results)
            rows = db.flop_failure_rates(circuit="b04")
            assert rows, "aggregate returned no flops"
            # every (campaign, flop, verdict) pools into the SQL answer:
            # recompute the same aggregate from the oracles and compare.
            expected = {}
            for spec in specs:
                oracle = oracles[spec.campaign_id]
                for fault, verdict in zip(oracle.faults, oracle.verdicts()):
                    entry = expected.setdefault(
                        fault.flop_name, {"faults": 0, "failures": 0}
                    )
                    entry["faults"] += 1
                    entry["failures"] += verdict.value == "failure"
            assert len(rows) == len(expected)
            for row in rows:
                want = expected[row["flop"]]
                assert row["faults"] == want["faults"]
                assert row["failures"] == want["failures"]
                assert row["failure_rate"] == pytest.approx(
                    want["failures"] / want["faults"], abs=1e-6
                )
            # sampled per-seed campaigns genuinely pool: at least one
            # flop must appear in more than one campaign for the
            # "across campaigns" claim to be exercised.
            assert any(row["campaigns"] > 1 for row in rows)

    def test_flop_query_mode_scoping_and_mixed_pool_flag(self, tmp_path):
        """Mixing sampled and exhaustive campaigns biases the pooled
        per-fault rate; ``mode`` scopes the pool and the unscoped rows
        carry a ``mixed_pool`` warning flag."""
        # b02 is small enough to grade exhaustively in-test
        sampled_spec = _spec(circuit="b02", num_cycles=24, sample=30)
        exhaustive_spec = _spec(circuit="b02", num_cycles=24, sample=None)
        _graded_store(tmp_path, sampled_spec)
        _graded_store(tmp_path, exhaustive_spec)
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            db.import_root(str(tmp_path / "runs"))
            pooled = db.flop_failure_rates(circuit="b02")
            sampled = db.flop_failure_rates(circuit="b02", mode="sampled")
            exhaustive = db.flop_failure_rates(
                circuit="b02", mode="exhaustive"
            )
            # every b02 flop appears in both campaigns -> all pooled
            # rows are flagged, scoped rows never are
            assert pooled and all(row["mixed_pool"] for row in pooled)
            assert sampled and not any(row["mixed_pool"] for row in sampled)
            assert exhaustive
            assert not any(row["mixed_pool"] for row in exhaustive)
            for rows, key in (
                (sampled, "sampled_campaigns"),
                (exhaustive, "exhaustive_campaigns"),
            ):
                assert all(row[key] == 1 for row in rows)
                assert all(row["campaigns"] == 1 for row in rows)
            # the scoped pools partition the unscoped one
            by_flop = {row["flop"]: row for row in pooled}
            for row in sampled:
                other = next(
                    r for r in exhaustive if r["flop"] == row["flop"]
                )
                assert (
                    row["faults"] + other["faults"]
                    == by_flop[row["flop"]]["faults"]
                )
            with pytest.raises(ServiceError, match="sampling-mode"):
                db.flop_failure_rates(mode="bogus")

    def test_flop_query_filters_by_circuit(self, tmp_path):
        _graded_store(tmp_path, _spec())
        _graded_store(tmp_path, _spec(circuit="b06"))
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            db.import_root(str(tmp_path / "runs"))
            everything = db.flop_failure_rates()
            only_b06 = db.flop_failure_rates(circuit="b06")
            assert 0 < len(only_b06) < len(everything)

    def test_class_breakdown_groups_by_hardening(self, tmp_path):
        _graded_store(tmp_path, _spec())
        _graded_store(tmp_path, _spec(hardening="tmr"))
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            db.import_root(str(tmp_path / "runs"))
            rows = db.class_breakdown(group="hardening")
            groups = {row["grp"] for row in rows}
            assert groups == {"none", "tmr"}
            with pytest.raises(ServiceError, match="cannot group"):
                db.class_breakdown(group="campaign_id; DROP TABLE")

    def test_shard_provenance_is_imported(self, tmp_path):
        spec = _spec()
        _graded_store(tmp_path, spec)
        store = ResultsStore(str(tmp_path / "runs" / spec.campaign_id))
        with ResultsDB(str(tmp_path / "svc.db")) as db:
            db.import_root(str(tmp_path / "runs"))
            rows = db.shards(spec.campaign_id)
            records = list(store.iter_shards())
            assert [row["shard_index"] for row in rows] == [
                record.index for record in records
            ]
            assert [row["num_faults"] for row in rows] == [
                record.num_faults for record in records
            ]
