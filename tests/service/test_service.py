"""End-to-end tests of the HTTP campaign service.

One in-process :class:`CampaignService` per test (ephemeral port,
serial runner) driven through real HTTP requests — the same surface a
remote client sees, including error statuses.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.run.cli import main
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec
from repro.service.app import CampaignService

SPEC = {"circuit": "b04", "technique": "time_multiplexed",
        "sample": 25, "num_cycles": 48}


@pytest.fixture()
def service(tmp_path):
    runner = CampaignRunner(workers=0, store_root=str(tmp_path / "runs"))
    svc = CampaignService(
        str(tmp_path / "service.db"), runner, host="127.0.0.1", port=0
    )
    svc.start()
    yield svc
    svc.shutdown()
    runner.close()


def _request(service, path, body=None, method=None):
    """(status, parsed-JSON) for one request; 4xx/5xx don't raise."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        service.url + path, data=data,
        method=method or ("POST" if data else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def _await_terminal(service, campaign_id, timeout=60):
    deadline = time.time() + timeout
    while time.time() < deadline:
        _, row = _request(service, f"/campaigns/{campaign_id}")
        if row["status"] in ("done", "failed", "cancelled"):
            return row
        time.sleep(0.05)
    raise AssertionError(f"campaign {campaign_id} never finished: {row}")


class TestSubmission:
    def test_post_grades_and_matches_cli_digest(self, service, capsys):
        """The acceptance criterion: a campaign submitted over HTTP
        reports an oracle_digest identical to `repro run` of the same
        spec."""
        status, row = _request(service, "/campaigns", body=SPEC)
        assert status == 201
        assert row["status"] == "queued"
        assert row["resubmitted"] is False
        row = _await_terminal(service, row["campaign_id"])
        assert row["status"] == "done", row.get("error")
        assert row["shards_done"] == row["num_shards"] > 0

        assert main([
            "run", "--circuit", SPEC["circuit"], "--technique",
            SPEC["technique"], "--sample", str(SPEC["sample"]),
            "--cycles", str(SPEC["num_cycles"]),
            "--no-store", "--quiet", "--json",
        ]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["oracle_digest"] == row["oracle_digest"]

    def test_resubmission_is_idempotent(self, service):
        status, first = _request(service, "/campaigns", body=SPEC)
        assert status == 201
        done = _await_terminal(service, first["campaign_id"])
        status, again = _request(service, "/campaigns", body=SPEC)
        assert status == 200
        assert again["resubmitted"] is True
        assert again["campaign_id"] == first["campaign_id"]
        assert again["status"] == "done"
        # nothing was regraded: the digest and finish time are untouched
        assert again["oracle_digest"] == done["oracle_digest"]
        assert again["finished_at"] == done["finished_at"]

    def test_invalid_specs_are_400(self, service):
        status, body = _request(
            service, "/campaigns",
            body={**SPEC, "flux_capacitor": True},
        )
        assert status == 400
        assert "flux_capacitor" in body["error"]
        status, body = _request(
            service, "/campaigns", body={**SPEC, "technique": "warp"}
        )
        assert status == 400
        status, body = _request(service, "/campaigns", body=[1, 2])
        assert status == 400

    def test_unknown_campaign_is_404(self, service):
        status, body = _request(service, "/campaigns/b04-ffffffffff")
        assert status == 404
        assert "error" in body


class TestResultsAndQueries:
    def test_results_endpoint(self, service):
        _, row = _request(service, "/campaigns", body=SPEC)
        _await_terminal(service, row["campaign_id"])
        status, results = _request(
            service, f"/campaigns/{row['campaign_id']}/results"
        )
        assert status == 200
        assert results["num_faults"] == SPEC["sample"]
        assert sum(results["classes"].values()) == SPEC["sample"]
        assert len(results["shards"]) > 0
        assert results["oracle_digest"]

    def test_results_before_completion_is_409(self, service):
        spec = CampaignSpec.from_dict(SPEC)
        service.db.submit(spec)  # queued, never executed
        status, body = _request(
            service, f"/campaigns/{spec.campaign_id}/results"
        )
        assert status == 409
        assert body["status"] == "queued"

    def test_query_endpoint(self, service):
        _, row = _request(service, "/campaigns", body=SPEC)
        _await_terminal(service, row["campaign_id"])
        status, payload = _request(
            service, "/query?kind=flop_failures&circuit=b04&limit=5"
        )
        assert status == 200
        assert 0 < payload["count"] <= 5
        status, payload = _request(service, "/query?kind=classes")
        assert status == 200
        assert payload["rows"][0]["grp"] == "b04"
        status, payload = _request(service, "/query?kind=nonsense")
        assert status == 400

    def test_campaign_listing_filters(self, service):
        _, row = _request(service, "/campaigns", body=SPEC)
        _await_terminal(service, row["campaign_id"])
        status, listing = _request(service, "/campaigns?status=done")
        assert status == 200
        assert listing["count"] == 1
        status, listing = _request(service, "/campaigns?status=failed")
        assert listing["count"] == 0


class TestCancellation:
    def test_cancel_queued_campaign(self, tmp_path):
        # A service whose executor is never started: submissions stay
        # queued, so DELETE must flip them straight to cancelled.
        runner = CampaignRunner(workers=0, store_root=str(tmp_path / "runs"))
        svc = CampaignService(
            str(tmp_path / "db.db"), runner, host="127.0.0.1", port=0
        )
        # start only the HTTP thread, not the executor
        import threading

        thread = threading.Thread(
            target=svc.httpd.serve_forever, daemon=True
        )
        thread.start()
        try:
            status, row = _request(svc, "/campaigns", body=SPEC)
            assert status == 201
            status, body = _request(
                svc, f"/campaigns/{row['campaign_id']}", method="DELETE"
            )
            assert status == 200
            assert body["status"] == "cancelled"
            # second DELETE: terminal, nothing to cancel
            status, body = _request(
                svc, f"/campaigns/{row['campaign_id']}", method="DELETE"
            )
            assert body["status"] == "cancelled"
        finally:
            svc.httpd.shutdown()
            svc.httpd.server_close()
            svc.db.close()
            runner.close()

    def test_cancelled_campaign_requeues_on_resubmit(self, service):
        _, row = _request(service, "/campaigns", body=SPEC)
        done = _await_terminal(service, row["campaign_id"])
        service.db.mark_cancelled(done["campaign_id"])
        status, row = _request(service, "/campaigns", body=SPEC)
        assert status == 201  # re-queued, and will resume from the store
        _await_terminal(service, row["campaign_id"])


class TestOperational:
    def test_healthz(self, service):
        status, body = _request(service, "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert "queue_depth" in body

    def test_dashboard_lists_campaigns(self, service):
        _, row = _request(service, "/campaigns", body=SPEC)
        _await_terminal(service, row["campaign_id"])
        with urllib.request.urlopen(service.url + "/", timeout=30) as resp:
            markup = resp.read().decode()
        assert resp.headers["Content-Type"].startswith("text/html")
        assert row["campaign_id"] in markup
        assert "done" in markup

    def test_unknown_route_is_404(self, service):
        status, body = _request(service, "/nope")
        assert status == 404

    def test_queue_full_is_503_and_rolls_back(self, tmp_path):
        runner = CampaignRunner(workers=0, store_root=str(tmp_path / "runs"))
        svc = CampaignService(
            str(tmp_path / "db.db"), runner, host="127.0.0.1", port=0,
            queue_limit=1,
        )
        import threading

        thread = threading.Thread(
            target=svc.httpd.serve_forever, daemon=True
        )
        thread.start()  # executor deliberately not started: queue fills
        try:
            status, _ = _request(svc, "/campaigns", body=SPEC)
            assert status == 201
            overflow = {**SPEC, "seed": 99}
            status, body = _request(svc, "/campaigns", body=overflow)
            assert status == 503
            assert "queue is full" in body["error"]
            # the rolled-back campaign is gone, not stranded as queued
            overflow_id = CampaignSpec.from_dict(overflow).campaign_id
            status, _ = _request(svc, f"/campaigns/{overflow_id}")
            assert status == 404
        finally:
            svc.httpd.shutdown()
            svc.httpd.server_close()
            svc.db.close()
            runner.close()
