"""End-to-end integration tests: the full user workflows.

These walk the complete paths a downstream user takes — build, save,
reload, instrument, synthesize, campaign, report — across multiple
circuits and techniques, asserting cross-module consistency rather than
module-local behaviour.
"""

import pytest

from repro import (
    AutonomousEmulator,
    TECHNIQUES,
    area_of,
    available_circuits,
    build_circuit,
    exhaustive_fault_list,
    grade_faults,
    random_testbench,
    run_campaign,
)
from repro.faults.classify import FaultClass
from repro.netlist.textio import dumps_netlist, loads_netlist
from repro.sim.parallel import FaultGradingResult


class TestFullWorkflow:
    @pytest.mark.parametrize("name", ["b01", "b03", "b06", "b09"])
    def test_build_save_reload_grade(self, name):
        """Round-trip through the text format must not change grading."""
        original = build_circuit(name)
        reloaded = loads_netlist(dumps_netlist(original))
        bench = random_testbench(original, 30, seed=14)
        faults = exhaustive_fault_list(original, 30)
        graded_a = grade_faults(original, bench, faults)
        graded_b = grade_faults(reloaded, bench, faults)
        assert graded_a.fail_cycles == graded_b.fail_cycles
        assert graded_a.vanish_cycles == graded_b.vanish_cycles

    @pytest.mark.parametrize("technique", TECHNIQUES)
    def test_facade_synthesize_then_campaign(self, technique):
        circuit = build_circuit("b06")
        bench = random_testbench(circuit, 40, seed=2)
        emulator = AutonomousEmulator(
            circuit,
            technique,
            campaign_cycles=bench.num_cycles,
            campaign_faults=circuit.num_ffs * bench.num_cycles,
        )
        synthesis = emulator.synthesize(bench.num_cycles)
        campaign = emulator.run_campaign(bench)
        # area grows with instrumentation, campaign covers everything
        assert synthesis.modified.luts > synthesis.original.luts
        assert campaign.num_faults == circuit.num_ffs * bench.num_cycles
        assert sum(campaign.dictionary.counts().values()) == campaign.num_faults

    def test_shared_oracle_across_techniques(self):
        """One oracle drives all three campaigns; totals must be coherent."""
        circuit = build_circuit("b03")
        bench = random_testbench(circuit, 50, seed=6)
        faults = exhaustive_fault_list(circuit, 50)
        oracle = grade_faults(circuit, bench, faults)
        results = {
            t: run_campaign(circuit, bench, t, faults=faults, oracle=oracle)
            for t in TECHNIQUES
        }
        verdicts = [r.dictionary.counts() for r in results.values()]
        assert verdicts[0] == verdicts[1] == verdicts[2]
        assert results["time_multiplexed"].total_cycles == min(
            r.total_cycles for r in results.values()
        )

    def test_every_registered_circuit_full_pipeline(self):
        """Smoke the entire pipeline over the whole circuit registry."""
        for name in available_circuits():
            circuit = build_circuit(name)
            report = area_of(circuit)
            assert report.luts >= 0 and report.ffs == circuit.num_ffs
            bench = random_testbench(circuit, 10, seed=3)
            faults = exhaustive_fault_list(circuit, 10)
            oracle = grade_faults(circuit, bench, faults)
            assert oracle.num_faults == len(faults)


class TestCrossModuleConsistency:
    def test_latency_consistency_between_dictionary_and_campaign(self):
        """Time-mux run cycles must equal twice the dictionary's total
        classification latency (capped at testbench end)."""
        circuit = build_circuit("b01")
        bench = random_testbench(circuit, 60, seed=4)
        faults = exhaustive_fault_list(circuit, 60)
        oracle = grade_faults(circuit, bench, faults)
        campaign = run_campaign(
            circuit, bench, "time_multiplexed", faults=faults, oracle=oracle
        )
        total_latency = 0
        for record in campaign.dictionary:
            stop_candidates = [bench.num_cycles - 1]
            if record.fail_cycle != -1:
                stop_candidates.append(record.fail_cycle)
            if record.vanish_cycle != -1:
                stop_candidates.append(record.vanish_cycle)
            total_latency += min(stop_candidates) - record.fault.cycle + 1
        assert campaign.breakdown.run == 2 * total_latency

    def test_failure_rate_from_oracle_equals_dictionary(self):
        circuit = build_circuit("b09")
        bench = random_testbench(circuit, 40, seed=8)
        faults = exhaustive_fault_list(circuit, 40)
        oracle = grade_faults(circuit, bench, faults)
        from_oracle = sum(1 for c in oracle.fail_cycles if c != -1)
        from_dictionary = oracle.to_dictionary().counts()[FaultClass.FAILURE]
        assert from_oracle == from_dictionary

    def test_grading_result_types(self):
        circuit = build_circuit("b02")
        bench = random_testbench(circuit, 12, seed=1)
        faults = exhaustive_fault_list(circuit, 12)
        oracle = grade_faults(circuit, bench, faults)
        assert isinstance(oracle, FaultGradingResult)
        assert len(oracle.fail_cycles) == len(faults)
        assert all(
            -1 <= c < bench.num_cycles
            for c in oracle.fail_cycles + oracle.vanish_cycles
        )


class TestHardeningWorkflow:
    def test_tmr_protection_detected(self):
        """The motivating use case: the tool must show that TMR hardening
        eliminates single-fault failures."""
        from repro.hardening import harden_tmr

        plain = build_circuit("b06")
        tmr = harden_tmr(plain)
        cycles = 48
        results = {}
        for circuit in (plain, tmr):
            bench = random_testbench(circuit, cycles, seed=11)
            faults = exhaustive_fault_list(circuit, cycles)
            oracle = grade_faults(circuit, bench, faults)
            counts = oracle.to_dictionary().counts()
            results[circuit.name] = counts[FaultClass.FAILURE] / len(faults)
        assert results[plain.name] > 0.2
        assert results[tmr.name] == 0.0
