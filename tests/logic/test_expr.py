"""Unit tests for the boolean expression IR."""

import pytest

from repro.logic.expr import (
    Lit,
    Op,
    Var,
    cofactor,
    eval_expr,
    expr_support,
    expr_truth_table,
    mux,
)


class TestConstruction:
    def test_operators_build_ops(self):
        a, b = Var("a"), Var("b")
        assert isinstance(a & b, Op)
        assert (a | b).gate == "or"
        assert (a ^ b).gate == "xor"
        assert (~a).gate == "inv"

    def test_lit_validation(self):
        with pytest.raises(ValueError):
            Lit(2)

    def test_equality_and_hash(self):
        assert Var("x") == Var("x")
        assert Lit(1) == Lit(1)
        assert hash(Var("x")) == hash(Var("x"))
        assert Var("x") != Var("y")


class TestEval:
    def test_simple(self):
        expr = (Var("a") & Var("b")) | ~Var("c")
        assert eval_expr(expr, {"a": 1, "b": 1, "c": 1}) == 1
        assert eval_expr(expr, {"a": 0, "b": 1, "c": 1}) == 0
        assert eval_expr(expr, {"a": 0, "b": 0, "c": 0}) == 1

    def test_mux(self):
        expr = mux(Var("s"), Var("x"), Var("y"))
        assert eval_expr(expr, {"s": 0, "x": 1, "y": 0}) == 1
        assert eval_expr(expr, {"s": 1, "x": 1, "y": 0}) == 0

    def test_unbound_raises(self):
        with pytest.raises(KeyError):
            eval_expr(Var("missing"), {})


class TestSupport:
    def test_collects_variables(self):
        expr = (Var("a") & Var("b")) ^ Var("a")
        assert expr_support(expr) == {"a", "b"}

    def test_literal_has_empty_support(self):
        assert expr_support(Lit(0)) == frozenset()


class TestCofactor:
    def test_substitutes_and_folds(self):
        expr = Var("a") & Var("b")
        positive = cofactor(expr, "a", 1)
        # a=1 -> expr reduces to just b-dependence
        assert eval_expr(positive, {"b": 1}) == 1
        assert eval_expr(positive, {"b": 0}) == 0
        negative = cofactor(expr, "a", 0)
        assert isinstance(negative, Lit) and negative.value == 0

    def test_shannon_expansion_identity(self):
        # f = s ? f|s=1 : f|s=0 for all assignments
        f = (Var("s") & Var("x")) | (~Var("s") & Var("y")) ^ Var("x")
        for s in (0, 1):
            for x in (0, 1):
                for y in (0, 1):
                    full = eval_expr(f, {"s": s, "x": x, "y": y})
                    reduced = eval_expr(cofactor(f, "s", s), {"x": x, "y": y})
                    assert full == reduced


class TestTruthTable:
    def test_and_table(self):
        expr = Var("a") & Var("b")
        assert expr_truth_table(expr, ["a", "b"]) == 0b1000

    def test_variable_order_matters(self):
        expr = Var("a") & ~Var("b")
        ab = expr_truth_table(expr, ["a", "b"])
        ba = expr_truth_table(expr, ["b", "a"])
        assert ab == 0b0010
        assert ba == 0b0100
