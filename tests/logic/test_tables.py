"""Unit tests for gate semantics and truth tables."""

import itertools

import pytest

from repro.logic.tables import GATE_ARITY, GATE_NAMES, eval_gate, truth_table
from repro.logic.values import X


class TestGateEval:
    def test_and_nary(self):
        assert eval_gate("and", [1, 1, 1]) == 1
        assert eval_gate("and", [1, 0, 1]) == 0

    def test_or_nary(self):
        assert eval_gate("or", [0, 0, 0]) == 0
        assert eval_gate("or", [0, 1, 0]) == 1

    def test_nand_nor_invert(self):
        for inputs in itertools.product((0, 1), repeat=2):
            assert eval_gate("nand", inputs) == eval_gate("and", inputs) ^ 1
            assert eval_gate("nor", inputs) == eval_gate("or", inputs) ^ 1

    def test_xor_is_parity(self):
        assert eval_gate("xor", [1, 1, 1]) == 1
        assert eval_gate("xor", [1, 1, 0]) == 0

    def test_xnor(self):
        assert eval_gate("xnor", [1, 1]) == 1
        assert eval_gate("xnor", [1, 0]) == 0

    def test_buf_inv(self):
        assert eval_gate("buf", [1]) == 1
        assert eval_gate("inv", [1]) == 0

    def test_mux2_select(self):
        # inputs are (select, d0, d1)
        assert eval_gate("mux2", [0, 0, 1]) == 0
        assert eval_gate("mux2", [1, 0, 1]) == 1

    def test_mux2_x_select_optimism(self):
        assert eval_gate("mux2", [X, 1, 1]) == 1
        assert eval_gate("mux2", [X, 0, 1]) == X

    def test_constants(self):
        assert eval_gate("const0", []) == 0
        assert eval_gate("const1", []) == 1

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            eval_gate("nonsense", [0])

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            eval_gate("inv", [0, 1])
        with pytest.raises(ValueError):
            eval_gate("and", [1])
        with pytest.raises(ValueError):
            eval_gate("mux2", [1, 0])


class TestTruthTables:
    def test_and2(self):
        assert truth_table("and", 2) == 0b1000

    def test_or2(self):
        assert truth_table("or", 2) == 0b1110

    def test_xor2(self):
        assert truth_table("xor", 2) == 0b0110

    def test_inv(self):
        assert truth_table("inv", 1) == 0b01

    def test_mux2(self):
        # rows indexed by (d1 d0 select): out = select ? d1 : d0
        table = truth_table("mux2", 3)
        for row in range(8):
            select, d0, d1 = row & 1, (row >> 1) & 1, (row >> 2) & 1
            expected = d1 if select else d0
            assert (table >> row) & 1 == expected

    def test_every_gate_has_consistent_table(self):
        for name in GATE_NAMES:
            low, high = GATE_ARITY[name]
            arity = low if low > 0 else 0
            table = truth_table(name, arity)
            assert 0 <= table < (1 << (1 << arity))

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            truth_table("mux2", 2)
