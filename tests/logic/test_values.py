"""Unit tests for three-valued logic primitives."""

import pytest

from repro.logic.values import X, is_known, resolve3, v3_and, v3_not, v3_or, v3_xor


class TestNot:
    def test_known(self):
        assert v3_not(0) == 1
        assert v3_not(1) == 0

    def test_x(self):
        assert v3_not(X) == X

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            v3_not(2)


class TestAnd:
    def test_truth_table(self):
        assert v3_and(0, 0) == 0
        assert v3_and(0, 1) == 0
        assert v3_and(1, 1) == 1

    def test_zero_dominates_x(self):
        assert v3_and(0, X) == 0
        assert v3_and(X, 0) == 0

    def test_one_with_x_is_x(self):
        assert v3_and(1, X) == X


class TestOr:
    def test_truth_table(self):
        assert v3_or(0, 0) == 0
        assert v3_or(1, 0) == 1

    def test_one_dominates_x(self):
        assert v3_or(1, X) == 1
        assert v3_or(X, 1) == 1

    def test_zero_with_x_is_x(self):
        assert v3_or(0, X) == X


class TestXor:
    def test_known(self):
        assert v3_xor(1, 0) == 1
        assert v3_xor(1, 1) == 0

    def test_any_x_poisons(self):
        assert v3_xor(0, X) == X
        assert v3_xor(X, 1) == X


class TestResolve:
    def test_agreement(self):
        assert resolve3([1, 1, 1]) == 1
        assert resolve3([0]) == 0

    def test_disagreement_is_x(self):
        assert resolve3([0, 1]) == X

    def test_x_poisons(self):
        assert resolve3([1, X]) == X

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            resolve3([])


def test_is_known():
    assert is_known(0) and is_known(1)
    assert not is_known(X)
