"""Unit tests for the structural lowering primitives.

The elaborator tests cover lowering through whole modules; these hit the
lowering library directly, including the pieces only the controller
generator uses (decoders, one-hot muxes).
"""

import pytest

from repro.errors import ElaborationError
from repro.netlist.builder import NetlistBuilder
from repro.rtl import lower
from repro.sim.cycle import CycleSimulator


def evaluate(build):
    """Helper: build a combinational circuit and return an evaluator."""
    builder = NetlistBuilder("lower_test")
    outputs = build(builder)
    for index, net in enumerate(outputs):
        builder.output_net(f"o[{index}]", net)
    netlist = builder.build(allow_dangling=True)
    sim = CycleSimulator(netlist)

    def run(word):
        packed = sim.step(word)
        return [(packed >> i) & 1 for i in range(len(outputs))]

    return run


class TestConst:
    def test_pattern(self):
        run = evaluate(lambda b: lower.lower_const(b, 6, 0b101101))
        assert run(0) == [1, 0, 1, 1, 0, 1]

    def test_all_zero_and_all_one(self):
        run = evaluate(lambda b: lower.lower_const(b, 3, 0))
        assert run(0) == [0, 0, 0]
        run = evaluate(lambda b: lower.lower_const(b, 3, 7))
        assert run(0) == [1, 1, 1]


class TestAdders:
    @pytest.mark.parametrize("a,b", [(0, 0), (5, 3), (15, 1), (9, 9), (15, 15)])
    def test_add_with_carry_in(self, a, b):
        def build(builder):
            xs = builder.inputs("x", 4)
            ys = builder.inputs("y", 4)
            return lower.lower_add(builder, xs, ys, carry_in=builder.const1())

        run = evaluate(build)
        bits = run(a | (b << 4))
        value = sum(bit << i for i, bit in enumerate(bits))
        assert value == (a + b + 1) & 0xF

    def test_width_mismatch(self):
        builder = NetlistBuilder("bad")
        xs = builder.inputs("x", 3)
        ys = builder.inputs("y", 4)
        with pytest.raises(ElaborationError):
            lower.lower_add(builder, xs, ys)


class TestDecoder:
    @pytest.mark.parametrize("lines", [2, 3, 4, 7, 8])
    def test_one_hot(self, lines):
        from repro.util.bitops import clog2

        width = max(1, clog2(lines))

        def build(builder):
            select = builder.inputs("s", width)
            return lower.lower_decoder(builder, select, lines)

        run = evaluate(build)
        for value in range(lines):
            bits = run(value)
            assert bits == [1 if i == value else 0 for i in range(lines)]


class TestOneHotMux:
    def test_selects_word(self):
        def build(builder):
            selects = builder.inputs("sel", 3)
            words = [
                lower.lower_const(builder, 4, 0b0011),
                lower.lower_const(builder, 4, 0b0101),
                lower.lower_const(builder, 4, 0b1110),
            ]
            return lower.lower_onehot_mux(builder, selects, words)

        run = evaluate(build)
        assert run(0b001) == [1, 1, 0, 0]
        assert run(0b010) == [1, 0, 1, 0]
        assert run(0b100) == [0, 1, 1, 1]

    def test_empty_rejected(self):
        builder = NetlistBuilder("bad")
        with pytest.raises(ElaborationError):
            lower.lower_onehot_mux(builder, [], [])


class TestShift:
    def test_left_pads_zero(self):
        def build(builder):
            xs = builder.inputs("x", 4)
            return lower.lower_shift(builder, xs, 2)

        run = evaluate(build)
        # x = 0b0110 -> bits [0,1,1,0]; << 2 keeps [x0,x1] at [2],[3]
        assert run(0b0110) == [0, 0, 0, 1]

    def test_right_drops_low_bits(self):
        def build(builder):
            xs = builder.inputs("x", 4)
            return lower.lower_shift(builder, xs, -1)

        run = evaluate(build)
        assert run(0b0110) == [1, 1, 0, 0]

    def test_shift_beyond_width_is_zero(self):
        def build(builder):
            xs = builder.inputs("x", 4)
            return lower.lower_shift(builder, xs, 9)

        run = evaluate(build)
        assert run(0b1111) == [0, 0, 0, 0]


class TestComparators:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (7, 7), (5, 2), (0, 7)])
    def test_lt_borrow_chain(self, a, b):
        def build(builder):
            xs = builder.inputs("x", 3)
            ys = builder.inputs("y", 3)
            return [lower.lower_lt(builder, xs, ys)]

        run = evaluate(build)
        assert run(a | (b << 3)) == [1 if a < b else 0]

    def test_reduce_ops(self):
        def build(builder):
            xs = builder.inputs("x", 5)
            return [
                lower.lower_reduce(builder, "or", xs),
                lower.lower_reduce(builder, "and", xs),
                lower.lower_reduce(builder, "xor", xs),
            ]

        run = evaluate(build)
        assert run(0b00000) == [0, 0, 0]
        assert run(0b11111) == [1, 1, 1]
        assert run(0b10101) == [1, 0, 1]

    def test_unknown_reduce_rejected(self):
        builder = NetlistBuilder("bad")
        xs = builder.inputs("x", 2)
        with pytest.raises(ElaborationError):
            lower.lower_reduce(builder, "nand", xs)
