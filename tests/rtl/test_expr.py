"""Unit tests for the word-level expression IR (construction rules)."""

import pytest

from repro.errors import ElaborationError
from repro.rtl.expr import (
    WConst,
    WSig,
    cat,
    const,
    mux,
    reduce_and,
    reduce_or,
    reduce_xor,
)


class TestWidths:
    def test_signal_width_positive(self):
        with pytest.raises(ElaborationError):
            WSig("bad", 0)

    def test_const_fits(self):
        assert const(4, 15).value == 15
        with pytest.raises(ElaborationError):
            const(4, 16)
        with pytest.raises(ElaborationError):
            const(0, 0)

    def test_bitwise_width_mismatch(self):
        with pytest.raises(ElaborationError):
            _ = WSig("a", 4) & WSig("b", 5)

    def test_arith_width_mismatch(self):
        with pytest.raises(ElaborationError):
            _ = WSig("a", 4) + WSig("b", 8)

    def test_compare_produces_one_bit(self):
        cmp = WSig("a", 8) == WSig("b", 8)
        assert cmp.width == 1
        assert (WSig("a", 8) < WSig("b", 8)).width == 1

    def test_mux_select_must_be_one_bit(self):
        with pytest.raises(ElaborationError):
            mux(WSig("s", 2), WSig("a", 4), WSig("b", 4))

    def test_mux_arms_equal_width(self):
        with pytest.raises(ElaborationError):
            mux(WSig("s", 1), WSig("a", 4), WSig("b", 5))


class TestStructure:
    def test_cat_sums_widths(self):
        assert cat(WSig("a", 3), WSig("b", 5)).width == 8

    def test_cat_empty_rejected(self):
        with pytest.raises(ElaborationError):
            cat()

    def test_slice_bounds(self):
        sig = WSig("a", 8)
        assert sig[0:4].width == 4
        assert sig[7].width == 1
        with pytest.raises(ElaborationError):
            _ = sig[5:9]
        with pytest.raises(ElaborationError):
            _ = sig[4:4]

    def test_slice_step_rejected(self):
        with pytest.raises(ElaborationError):
            _ = WSig("a", 8)[0:8:2]

    def test_shift_preserves_width(self):
        sig = WSig("a", 8)
        assert sig.shift_left(3).width == 8
        assert sig.shift_right(2).width == 8

    def test_zext(self):
        sig = WSig("a", 4)
        assert sig.zext(8).width == 8
        assert sig.zext(4) is sig
        with pytest.raises(ElaborationError):
            sig.zext(3)

    def test_reductions_are_one_bit(self):
        sig = WSig("a", 9)
        for reduced in (reduce_or(sig), reduce_and(sig), reduce_xor(sig)):
            assert reduced.width == 1
