"""Elaboration tests: RTL semantics must survive the trip to gates.

Each test builds a module, elaborates it, and checks cycle-simulated
behaviour against a direct Python model of the same RTL.
"""

import pytest

from repro.errors import ElaborationError
from repro.rtl import RtlModule, cat, const, mux, reduce_and, reduce_or, reduce_xor
from repro.sim.cycle import CycleSimulator
from repro.util.rng import DeterministicRng


def run_comb(module: RtlModule, input_word: int) -> int:
    """One-cycle evaluation of a purely combinational module."""
    sim = CycleSimulator(module.elaborate())
    return sim.step(input_word)


def make_binop_module(op, width=6):
    m = RtlModule("binop")
    a = m.input("a", width)
    b = m.input("b", width)
    m.output("y", op(a, b))
    return m


RNG = DeterministicRng(99)
PAIRS = [(RNG.word(6), RNG.word(6)) for _ in range(12)] + [
    (0, 0), (63, 63), (63, 1), (0, 63),
]


class TestArithmetic:
    @pytest.mark.parametrize("a,b", PAIRS)
    def test_add_mod_2w(self, a, b):
        m = make_binop_module(lambda x, y: x + y)
        assert run_comb(m, a | (b << 6)) == (a + b) & 63

    @pytest.mark.parametrize("a,b", PAIRS)
    def test_sub_mod_2w(self, a, b):
        m = make_binop_module(lambda x, y: x - y)
        assert run_comb(m, a | (b << 6)) == (a - b) & 63

    @pytest.mark.parametrize("a,b", PAIRS)
    def test_unsigned_lt(self, a, b):
        m = make_binop_module(lambda x, y: x < y)
        assert run_comb(m, a | (b << 6)) == (1 if a < b else 0)

    @pytest.mark.parametrize("a,b", PAIRS)
    def test_unsigned_ge(self, a, b):
        m = make_binop_module(lambda x, y: x >= y)
        assert run_comb(m, a | (b << 6)) == (1 if a >= b else 0)

    @pytest.mark.parametrize("a,b", PAIRS)
    def test_eq_ne(self, a, b):
        m = make_binop_module(lambda x, y: cat(x == y, x != y))
        out = run_comb(m, a | (b << 6))
        assert out & 1 == (1 if a == b else 0)
        assert (out >> 1) & 1 == (1 if a != b else 0)


class TestBitwise:
    @pytest.mark.parametrize("a,b", PAIRS[:8])
    def test_and_or_xor_not(self, a, b):
        m = RtlModule("bw")
        x = m.input("x", 6)
        y = m.input("y", 6)
        m.output("o_and", x & y)
        m.output("o_or", x | y)
        m.output("o_xor", x ^ y)
        m.output("o_not", ~x)
        out = run_comb(m, a | (b << 6))
        assert out & 63 == a & b
        assert (out >> 6) & 63 == a | b
        assert (out >> 12) & 63 == a ^ b
        assert (out >> 18) & 63 == (~a) & 63


class TestStructure:
    def test_cat_slice_shift(self):
        m = RtlModule("st")
        x = m.input("x", 8)
        m.output("low", x[0:4])
        m.output("hi", x[4:8])
        m.output("swapped", cat(x[4:8], x[0:4]))
        m.output("shl2", x.shift_left(2))
        m.output("shr3", x.shift_right(3))
        value = 0b10110110
        out = run_comb(m, value)
        assert out & 0xF == value & 0xF
        assert (out >> 4) & 0xF == value >> 4
        assert (out >> 8) & 0xFF == ((value >> 4) | ((value & 0xF) << 4))
        assert (out >> 16) & 0xFF == (value << 2) & 0xFF
        assert (out >> 24) & 0xFF == value >> 3

    def test_reductions(self):
        m = RtlModule("red")
        x = m.input("x", 5)
        m.output("any", reduce_or(x))
        m.output("all", reduce_and(x))
        m.output("par", reduce_xor(x))
        for value in (0, 1, 0b11111, 0b10101):
            out = run_comb(m, value)
            assert out & 1 == (1 if value else 0)
            assert (out >> 1) & 1 == (1 if value == 31 else 0)
            assert (out >> 2) & 1 == bin(value).count("1") % 2

    def test_mux_word(self):
        m = RtlModule("mx")
        s = m.input("s", 1)
        a = m.input("a", 4)
        b = m.input("b", 4)
        m.output("y", mux(s, a, b))
        # s=0 -> a
        assert run_comb(m, 0 | (5 << 1) | (9 << 5)) == 5
        # s=1 -> b
        assert run_comb(m, 1 | (5 << 1) | (9 << 5)) == 9


class TestSequential:
    def test_register_init_and_update(self):
        m = RtlModule("seq")
        d = m.input("d", 4)
        r = m.register("r", 4, init=0b1001)
        m.next(r, d)
        m.output("q", r)
        sim = CycleSimulator(m.elaborate())
        assert sim.step(0b0110) == 0b1001  # init visible first
        assert sim.step(0b0000) == 0b0110

    def test_register_requires_next(self):
        m = RtlModule("seq")
        m.register("r", 4)
        m.output("q", const(4, 0))
        with pytest.raises(ElaborationError, match="next-state"):
            m.elaborate()

    def test_double_next_rejected(self):
        m = RtlModule("seq")
        r = m.register("r", 2)
        m.next(r, const(2, 1))
        with pytest.raises(ElaborationError, match="already"):
            m.next(r, const(2, 2))

    def test_next_width_checked(self):
        m = RtlModule("seq")
        r = m.register("r", 4)
        with pytest.raises(ElaborationError, match="width"):
            m.next(r, const(5, 0))

    def test_flop_naming_convention(self):
        m = RtlModule("seq")
        r = m.register("state", 3, init=0)
        m.next(r, r)
        m.output("q", r)
        n = m.elaborate()
        assert n.ff_names() == [f"ff$state[{i}]" for i in range(3)]

    def test_init_too_wide_rejected(self):
        m = RtlModule("seq")
        with pytest.raises(ElaborationError, match="init"):
            m.register("r", 3, init=8)


class TestModuleRules:
    def test_duplicate_signal_rejected(self):
        m = RtlModule("dup")
        m.input("x", 4)
        with pytest.raises(ElaborationError, match="duplicate"):
            m.register("x", 4)

    def test_duplicate_output_rejected(self):
        m = RtlModule("dup")
        x = m.input("x", 1)
        m.output("y", x)
        with pytest.raises(ElaborationError, match="duplicate"):
            m.output("y", x)

    def test_next_on_non_register(self):
        m = RtlModule("bad")
        x = m.input("x", 4)
        with pytest.raises(ElaborationError, match="not a register"):
            m.next(x, x)

    def test_unknown_signal_in_expression(self):
        from repro.rtl.expr import WSig

        m = RtlModule("bad")
        m.output("y", WSig("ghost", 4))
        with pytest.raises(ElaborationError, match="unknown signal"):
            m.elaborate()

    def test_total_register_bits(self):
        m = RtlModule("count")
        m.register("a", 5)
        m.register("b", 7)
        assert m.total_register_bits() == 12
