"""Tests for the benchmark circuit collection."""

import pytest

from repro.circuits import available_circuits, build_circuit
from repro.circuits.generators import (
    build_counter_bank,
    build_fsm_grid,
    build_lfsr,
    build_pipeline,
    build_scaled_processor,
)
from repro.circuits.itc99 import B14_SPEC, build_b14
from repro.circuits.itc99.b14 import b14_program_testbench
from repro.errors import ElaborationError, ReproError
from repro.netlist.validate import validate_netlist
from repro.sim.cycle import CycleSimulator
from repro.sim.vectors import random_testbench

#: documented interface shapes of the ITC'99-style circuits
ITC99_SHAPES = {
    "b01": (2, 2, 5),
    "b02": (1, 1, 4),
    "b03": (4, 4, 30),
    "b06": (2, 6, 9),
    "b09": (1, 1, 28),
    "b14": (32, 54, 215),
}


class TestRegistry:
    def test_all_registered_circuits_build_and_validate(self):
        for name in available_circuits():
            netlist = build_circuit(name)
            validate_netlist(netlist)

    def test_unknown_circuit_lists_alternatives(self):
        with pytest.raises(ReproError, match="b14"):
            build_circuit("b999")

    def test_itc99_names_present(self):
        names = available_circuits()
        for name in ITC99_SHAPES:
            assert name in names


@pytest.mark.parametrize("name,shape", sorted(ITC99_SHAPES.items()))
def test_itc99_interface_shapes(name, shape):
    inputs, outputs, flops = shape
    netlist = build_circuit(name)
    assert len(netlist.inputs) == inputs, f"{name} inputs"
    assert len(netlist.outputs) == outputs, f"{name} outputs"
    assert netlist.num_ffs == flops, f"{name} flip-flops"


@pytest.mark.parametrize("name", sorted(ITC99_SHAPES))
def test_itc99_circuits_are_live(name):
    """Every circuit must actually respond to stimulus (no stuck logic)."""
    netlist = build_circuit(name)
    bench = random_testbench(netlist, 200, seed=17)
    outputs = CycleSimulator(netlist).run(bench)
    assert len(set(outputs)) > 1, f"{name} outputs never change"


class TestB14:
    def test_spec_constant(self):
        assert B14_SPEC == {"inputs": 32, "outputs": 54, "flip_flops": 215}

    def test_fault_space_matches_paper(self):
        b14 = build_b14()
        assert b14.num_ffs * 160 == 34_400

    def test_program_testbench_reproducible(self):
        b14 = build_b14()
        a = b14_program_testbench(b14, 50, seed=4)
        b = b14_program_testbench(b14, 50, seed=4)
        assert a.vectors == b.vectors

    def test_processor_fetches_and_branches(self):
        """Feeding a JMP-to-0x1F instruction must land the address bus on
        the branch target eventually."""
        from repro.circuits.itc99.b14 import OP_JMP

        b14 = build_b14()
        jmp = (OP_JMP << 28) | 0x1F
        bench_vectors = [jmp] * 12
        from repro.sim.vectors import Testbench

        sim = CycleSimulator(b14)
        addresses = set()
        for vector in bench_vectors:
            out = sim.step(vector)
            addresses.add(out & 0xFFFFF)  # addr is outputs [0:20)
        assert 0x1F in addresses

    def test_store_drives_write_strobe(self):
        from repro.circuits.itc99.b14 import OP_STOREA

        b14 = build_b14()
        sim = CycleSimulator(b14)
        store = (OP_STOREA << 28) | 0x10
        wr_bit = b14.outputs.index("wr")
        saw_write = False
        for _ in range(12):
            out = sim.step(store)
            if (out >> wr_bit) & 1:
                saw_write = True
        assert saw_write

    def test_alu_path_changes_acc_visible_at_data_out(self):
        from repro.circuits.itc99.b14 import OP_ADD, OP_LOADA, OP_STOREA

        b14 = build_b14()
        sim = CycleSimulator(b14)
        # hold each instruction on the bus for several cycles so the
        # multi-cycle fetch/execute FSM latches each opcode regardless of
        # instruction length (3-4 cycles each)
        program = [(OP_LOADA << 28) | 1, (OP_ADD << 28), (OP_STOREA << 28) | 2]
        data_words = set()
        for instruction in program * 4:
            for _ in range(5):
                out = sim.step(instruction)
                data_words.add((out >> 20) & 0xFFFFFFFF)
        assert len(data_words) > 1


class TestGenerators:
    def test_counter_bank_ff_budget(self):
        assert build_counter_bank(4, 8).num_ffs == 32

    def test_lfsr_ff_budget(self):
        assert build_lfsr(16).num_ffs == 16

    def test_pipeline_ff_budget(self):
        assert build_pipeline(4, 8).num_ffs == 32

    def test_fsm_grid_ff_budget(self):
        assert build_fsm_grid(4, 3).num_ffs == 12

    def test_scaled_processor_near_budget(self):
        for budget in (32, 64, 128):
            netlist = build_scaled_processor(budget)
            assert 0.5 * budget <= netlist.num_ffs <= 2.2 * budget

    def test_generators_validate(self):
        for netlist in (
            build_counter_bank(2, 4),
            build_lfsr(8),
            build_pipeline(2, 4),
            build_fsm_grid(2, 2),
            build_scaled_processor(24),
        ):
            validate_netlist(netlist)

    def test_parameter_validation(self):
        with pytest.raises(ElaborationError):
            build_lfsr(2)
        with pytest.raises(ElaborationError):
            build_pipeline(0, 4)
        with pytest.raises(ElaborationError):
            build_scaled_processor(4)
