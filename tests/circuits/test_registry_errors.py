"""Malformed parameterized names fail with a clear :class:`ReproError`.

Every parameterized family (``hardened:``, ``corpus:``, ``file:``,
``proc:``, and the fault-model registry's ``mbu:``/``intermittent:``)
must reject bad parameters with an error naming the offending segment —
never a raw ``KeyError``/``ValueError`` traceback.
"""

import pytest

from repro.circuits.registry import build_circuit
from repro.errors import ReproError
from repro.faults.models import get_fault_model
from repro.run.spec import CampaignSpec


class TestCircuitNames:
    @pytest.mark.parametrize(
        "name, fragment",
        [
            ("hardened:bogus:b04", "bogus"),
            ("hardened:tmr", "hardened:tmr"),
            ("hardened::b04", "hardened::b04"),
            ("hardened:tmr:", "hardened:tmr:"),
            ("hardened:tmr:nonexistent", "nonexistent"),
            ("corpus:missing", "missing"),
            ("corpus:", "unknown corpus circuit"),
            ("proc:0", "proc:0"),
            ("proc:abc", "proc:abc"),
            ("no_such_circuit", "no_such_circuit"),
        ],
    )
    def test_bad_name_raises_repro_error_naming_segment(self, name, fragment):
        with pytest.raises(ReproError, match=fragment):
            build_circuit(name)

    def test_missing_file_is_a_repro_error(self):
        with pytest.raises(ReproError, match="nope.bench"):
            build_circuit("file:nope.bench")

    def test_unknown_name_lists_families(self):
        with pytest.raises(ReproError, match="hardened:<scheme>:<circuit>"):
            build_circuit("definitely_not_registered")


class TestFaultModelNames:
    @pytest.mark.parametrize(
        "name, fragment",
        [
            ("mbu:0", "width must be at least 2"),
            ("mbu:1", "width must be at least 2"),
            ("mbu:x", "expected an integer"),
            ("mbu:2:3", "expected mbu or mbu:<width>"),
            ("stuck_at_2", "unknown fault model"),
            ("intermittent:0:1", "period"),
            ("intermittent:abc", "intermittent"),
        ],
    )
    def test_bad_model_raises_repro_error(self, name, fragment):
        with pytest.raises(ReproError, match=fragment):
            get_fault_model(name)

    def test_spec_surfaces_model_error_early(self):
        with pytest.raises(ReproError, match="width must be at least 2"):
            CampaignSpec(circuit="b02", technique="mask_scan", fault_model="mbu:0")
