"""Unit tests for bit-manipulation helpers."""

import pytest

from repro.util.bitops import (
    bit_count,
    bits_from_int,
    bits_to_int,
    ceil_div,
    clog2,
    iter_set_bits,
    mask,
)


class TestClog2:
    def test_one_state_needs_zero_bits(self):
        assert clog2(1) == 0

    def test_exact_powers(self):
        assert clog2(2) == 1
        assert clog2(256) == 8

    def test_between_powers_rounds_up(self):
        assert clog2(3) == 2
        assert clog2(215) == 8
        assert clog2(257) == 9

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            clog2(0)
        with pytest.raises(ValueError):
            clog2(-4)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(64, 8) == 8

    def test_rounds_up(self):
        assert ceil_div(65, 8) == 9
        assert ceil_div(1, 8) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 8) == 0

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)


class TestMask:
    def test_widths(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(64) == (1 << 64) - 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitCount:
    def test_zero(self):
        assert bit_count(0) == 0

    def test_dense(self):
        assert bit_count(0b10110111) == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_count(-1)


class TestIterSetBits:
    def test_positions_low_first(self):
        assert list(iter_set_bits(0b1010010)) == [1, 4, 6]

    def test_empty(self):
        assert list(iter_set_bits(0)) == []

    def test_large_value(self):
        value = (1 << 100) | 1
        assert list(iter_set_bits(value)) == [0, 100]


class TestBitsConversion:
    def test_roundtrip(self):
        for value in (0, 1, 0b1011, 0xFF, 12345):
            width = max(1, value.bit_length())
            assert bits_to_int(bits_from_int(value, width)) == value

    def test_lsb_first(self):
        assert bits_from_int(0b110, 3) == [0, 1, 1]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            bits_from_int(8, 3)

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])
