"""Unit tests for the deterministic RNG."""

from repro.util.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.word(16) for _ in range(10)] == [b.word(16) for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(7)
        b = DeterministicRng(8)
        assert [a.word(32) for _ in range(5)] != [b.word(32) for _ in range(5)]

    def test_fork_is_independent_of_parent_consumption(self):
        parent1 = DeterministicRng(3)
        fork_before = parent1.fork("x").word(32)
        parent2 = DeterministicRng(3)
        parent2.word(32)  # consume from the parent stream
        fork_after = parent2.fork("x").word(32)
        assert fork_before == fork_after

    def test_fork_labels_give_distinct_streams(self):
        base = DeterministicRng(3)
        assert base.fork("a").word(32) != base.fork("b").word(32)


class TestDraws:
    def test_word_fits_width(self):
        rng = DeterministicRng(1)
        for _ in range(50):
            assert rng.word(5) < 32

    def test_word_bias_extremes(self):
        rng = DeterministicRng(1)
        assert rng.word(16, probability_of_one=0.0) == 0
        assert rng.word(16, probability_of_one=1.0) == 0xFFFF

    def test_bit_is_binary(self):
        rng = DeterministicRng(2)
        assert set(rng.bit() for _ in range(100)) <= {0, 1}

    def test_integer_bounds_inclusive(self):
        rng = DeterministicRng(4)
        values = {rng.integer(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_sample_without_replacement(self):
        rng = DeterministicRng(5)
        sample = rng.sample(list(range(20)), 10)
        assert len(sample) == len(set(sample)) == 10
