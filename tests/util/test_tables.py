"""Unit tests for the text table renderer."""

import pytest

from repro.util.tables import Table, format_si


class TestTable:
    def test_renders_headers_and_rows(self):
        table = Table(["a", "bb"], title="demo")
        table.add_row([1, "x"])
        text = table.render()
        assert "demo" in text
        assert "a" in text and "bb" in text
        assert "1" in text and "x" in text

    def test_columns_align(self):
        table = Table(["name", "v"])
        table.add_row(["short", 1])
        table.add_row(["much_longer_name", 22])
        lines = table.render().splitlines()
        # all data/header lines have equal width
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    def test_rejects_wrong_cell_count(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_str_equals_render(self):
        table = Table(["a"])
        table.add_row([3])
        assert str(table) == table.render()


class TestFormatSi:
    def test_kilo(self):
        assert format_si(34400, "bit") == "34.40 kbit"

    def test_mega(self):
        assert format_si(7.2e6, "bit").startswith("7.20 M")

    def test_unity(self):
        assert format_si(12.0) == "12.00"

    def test_micro(self):
        assert "u" in format_si(4.1e-6, "s")
