"""Unit tests for the gate-arity lowering pass."""

import pytest

from repro.errors import NetlistError
from repro.frontend.lower import lower_gates
from repro.logic.tables import eval_gate
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.sim.cycle import CycleSimulator


def _wide(gate_type: str, arity: int) -> Netlist:
    netlist = Netlist(f"wide_{gate_type}")
    nets = [netlist.add_input(f"i{i}") for i in range(arity)]
    netlist.add_gate("g", gate_type, nets, "y")
    netlist.add_output("y")
    return netlist


@pytest.mark.parametrize(
    "gate_type", ["and", "or", "xor", "nand", "nor", "xnor"]
)
@pytest.mark.parametrize("arity", [3, 5, 8])
def test_lowered_tree_is_functionally_identical(gate_type, arity):
    lowered = lower_gates(_wide(gate_type, arity))
    assert all(len(g.inputs) <= 2 for g in lowered.gates.values())
    assert lowered.driver_of("y").name == "g"  # root keeps the instance name
    sim = CycleSimulator(lowered)
    for vector in range(1 << arity):
        bits = [(vector >> i) & 1 for i in range(arity)]
        assert sim.step(vector) == eval_gate(gate_type, bits), (vector, bits)


def test_narrow_netlist_is_returned_unchanged():
    netlist = _wide("and", 2)
    assert lower_gates(netlist) is netlist


def test_wide_mux_free_passthrough_is_identity():
    # mux2 is 3-input but not a tree type: must not defeat the no-op path
    builder = NetlistBuilder("m")
    select = builder.input("s")
    builder.output_net(
        "y", builder.mux(select, builder.input("a"), builder.input("b"))
    )
    netlist = builder.build()
    assert lower_gates(netlist) is netlist


def test_bad_max_arity_rejected():
    with pytest.raises(NetlistError, match="max_arity"):
        lower_gates(_wide("and", 3), max_arity=1)
