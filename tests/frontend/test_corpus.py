"""Corpus bundling, registry integration and spec identity tests."""

import shutil

import pytest

from repro.circuits.registry import build_circuit, circuit_source_path
from repro.errors import ReproError
from repro.frontend import netlist_file_digest, synthesize_testbench
from repro.frontend.corpus import corpus_files, corpus_names, load_corpus_circuit
from repro.netlist.validate import validate_netlist
from repro.run.spec import CampaignSpec

EXPECTED_CORPUS = {"c17", "c432", "c880", "c1355", "s27", "s298", "s344", "s1488"}


class TestCorpus:
    def test_expected_circuits_bundled(self):
        assert EXPECTED_CORPUS <= set(corpus_names())

    def test_every_corpus_file_loads_and_validates(self):
        for name in corpus_names():
            netlist = load_corpus_circuit(name)
            validate_netlist(netlist, allow_dangling=True)
            assert netlist.name == name
            assert all(len(g.inputs) <= 2 for g in netlist.gates.values())

    def test_sequential_corpus_has_flops(self):
        for name in ("s27", "s298", "s344", "s1488"):
            assert load_corpus_circuit(name).num_ffs > 0

    def test_combinational_corpus_has_none(self):
        for name in ("c17", "c432", "c880", "c1355"):
            assert load_corpus_circuit(name).num_ffs == 0

    def test_canonical_s27_shape(self):
        s27 = load_corpus_circuit("s27")
        assert len(s27.inputs) == 4
        assert s27.num_ffs == 3
        assert s27.num_gates == 10

    def test_unknown_corpus_name(self):
        with pytest.raises(ReproError, match="available"):
            load_corpus_circuit("s9999")


class TestRegistry:
    def test_corpus_name_builds(self):
        netlist = build_circuit("corpus:s298")
        assert netlist.name == "s298"
        assert netlist.num_ffs > 0

    def test_file_name_builds(self, tmp_path):
        path = tmp_path / "mine.bench"
        shutil.copy(corpus_files()["s27"], path)
        netlist = build_circuit(f"file:{path}")
        assert netlist.name == "mine"
        assert netlist.num_ffs == 3

    def test_source_path(self, tmp_path):
        assert circuit_source_path("b14") is None
        assert circuit_source_path("corpus:s27").endswith("s27.bench")
        assert circuit_source_path("file:/x/y.bench") == "/x/y.bench"

    def test_missing_file_is_clean_error(self):
        with pytest.raises(ReproError, match="cannot read"):
            build_circuit("file:/nonexistent/path.bench")


class TestSpecIdentity:
    def test_oracle_key_carries_digest_for_imported_only(self):
        plain = CampaignSpec(circuit="b04", technique="mask_scan")
        assert "circuit_digest" not in plain.oracle_key()
        imported = CampaignSpec(circuit="corpus:s298", technique="mask_scan")
        key = imported.oracle_key()
        assert key["circuit_digest"] == netlist_file_digest(
            circuit_source_path("corpus:s298")
        )

    def test_auto_testbench_resolves_to_imported(self):
        spec = CampaignSpec(circuit="corpus:s298", technique="mask_scan")
        assert spec.resolved_testbench_kind() == "imported"
        plain = CampaignSpec(circuit="b04", technique="mask_scan")
        assert plain.resolved_testbench_kind() == "random"

    def test_key_stable_across_reimports_and_changes_on_edit(self, tmp_path):
        path = tmp_path / "c.bench"
        shutil.copy(corpus_files()["s27"], path)
        spec = CampaignSpec(circuit=f"file:{path}", technique="mask_scan")
        first_key, first_id = spec.oracle_key(), spec.campaign_id
        # unchanged file, fresh spec object -> identical identity
        again = CampaignSpec(circuit=f"file:{path}", technique="state_scan")
        assert again.oracle_key() == first_key
        assert again.campaign_id == first_id
        # any content change -> different identity
        path.write_text(path.read_text() + "# touched\n")
        assert spec.oracle_key() != first_key
        assert spec.campaign_id != first_id

    def test_spec_roundtrips_through_json(self, tmp_path):
        path = tmp_path / "c.bench"
        shutil.copy(corpus_files()["s27"], path)
        spec = CampaignSpec(circuit=f"file:{path}", technique="mask_scan")
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_synthesized_testbench_deterministic(self):
        netlist = load_corpus_circuit("s298")
        first = synthesize_testbench(netlist, 64, seed=3)
        second = synthesize_testbench(netlist, 64, seed=3)
        other_seed = synthesize_testbench(netlist, 64, seed=4)
        assert first.vectors == second.vectors
        assert first.vectors != other_seed.vectors
        # warmup walks a one across every input
        width = len(netlist.inputs)
        assert first.vectors[:width] == [1 << i for i in range(width)][: len(first.vectors)]


class TestCampaignEndToEnd:
    def test_corpus_campaign_grades_bit_exactly_across_engines(self):
        from repro.sim.parallel import grade_faults

        spec = CampaignSpec(
            circuit="corpus:s27", technique="mask_scan", num_cycles=32
        )
        scenario = spec.scenario()
        reference = None
        for engine in ("fused", "numpy", "bigint"):
            result = grade_faults(
                scenario.netlist,
                scenario.testbench,
                scenario.faults,
                backend=engine,
            )
            signature = (
                [int(v) for v in result.fail_cycles],
                [int(v) for v in result.vanish_cycles],
            )
            if reference is None:
                reference = signature
            assert signature == reference, engine

    def test_corpus_campaign_through_runner_and_store(self, tmp_path):
        from repro.run.runner import CampaignRunner

        spec = CampaignSpec(
            circuit="corpus:s27",
            technique="time_multiplexed",
            num_cycles=24,
            fault_model="stuck_at_1",
        )
        runner = CampaignRunner(store_root=str(tmp_path))
        first = runner.run(spec)
        resumed = runner.run(spec)  # resumes, must not change results
        assert first.dictionary.counts() == resumed.dictionary.counts()

    def test_combinational_corpus_campaign_rejected_cleanly(self):
        from repro.errors import CampaignError

        spec = CampaignSpec(circuit="corpus:c17", technique="mask_scan")
        with pytest.raises(CampaignError, match="empty population"):
            spec.scenario()

    def test_combinational_corpus_cli_error_is_clean(self, capsys):
        from repro.run.cli import main

        code = main(["run", "--circuit", "corpus:c17", "--no-store", "--quiet"])
        assert code == 1
        assert "empty population" in capsys.readouterr().err

    def test_file_campaign_cli(self, tmp_path, capsys):
        from repro.run.cli import main

        path = tmp_path / "mine.bench"
        shutil.copy(corpus_files()["s27"], path)
        code = main(
            [
                "run",
                "--circuit", f"file:{path}",
                "--cycles", "24",
                "--no-store",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "on mine:" in out
