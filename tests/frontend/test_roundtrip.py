"""Round-trip property tests and malformed-input fuzzing.

Satellite contract: for every registered circuit, ``dumps_netlist`` ->
``loads_netlist`` preserves structure and produces bit-exact
fault-grading results across all three engines; malformed ``.bnet`` /
``.bench`` / BLIF input always surfaces as :class:`ParseError` (or at
worst another :class:`ReproError`) with a line number — never a raw
traceback.
"""

import pytest

from repro.circuits.registry import available_circuits, build_circuit
from repro.errors import ParseError, ReproError
from repro.faults.model import exhaustive_fault_list
from repro.frontend import load_netlist
from repro.frontend.corpus import corpus_files
from repro.netlist.textio import dumps_netlist, loads_netlist
from repro.run.spec import default_testbench_for
from repro.sim.parallel import grade_faults
from repro.util.rng import DeterministicRng

ENGINES = ("fused", "numpy", "bigint")
#: grading caps that keep every-circuit x every-engine affordable
ROUNDTRIP_CYCLES = 12
ROUNDTRIP_FAULTS = 48


def _structure(netlist):
    return (
        netlist.inputs,
        netlist.outputs,
        {n: (g.gate_type, g.inputs, g.output) for n, g in netlist.gates.items()},
        {n: (d.d, d.q, d.init) for n, d in netlist.dffs.items()},
    )


@pytest.mark.parametrize("circuit", available_circuits())
def test_bnet_roundtrip_structure_and_grading(circuit):
    original = build_circuit(circuit)
    reparsed = loads_netlist(dumps_netlist(original))
    assert _structure(reparsed) == _structure(original)

    testbench = default_testbench_for(original, num_cycles=ROUNDTRIP_CYCLES)
    faults = exhaustive_fault_list(original, ROUNDTRIP_CYCLES)[:ROUNDTRIP_FAULTS]
    reference = None
    for engine in ENGINES:
        for netlist in (original, reparsed):
            result = grade_faults(netlist, testbench, faults, backend=engine)
            signature = (
                [int(v) for v in result.fail_cycles],
                [int(v) for v in result.vanish_cycles],
            )
            if reference is None:
                reference = signature
            assert signature == reference, (circuit, engine, netlist.name)


@pytest.mark.parametrize("name", ["s27", "s298"])
def test_bench_corpus_roundtrip_grading(name):
    """The .bench writer/parser pair is behaviour-preserving too."""
    from repro.frontend.bench import dumps_bench

    original = load_netlist(corpus_files()[name].read_text(), fmt="bench",
                            name=name)
    reparsed = load_netlist(dumps_bench(original), fmt="bench", name=name)
    testbench = default_testbench_for(original, num_cycles=ROUNDTRIP_CYCLES)
    faults = exhaustive_fault_list(original, ROUNDTRIP_CYCLES)[:ROUNDTRIP_FAULTS]
    grade = lambda n: grade_faults(n, testbench, faults, backend="fused")  # noqa: E731
    first, second = grade(original), grade(reparsed)
    assert list(first.fail_cycles) == list(second.fail_cycles)
    assert list(first.vanish_cycles) == list(second.vanish_cycles)


# ----------------------------------------------------------------------
# fuzzing
# ----------------------------------------------------------------------
VALID_BNET = dumps_netlist  # applied to a registered circuit below

GARBAGE_TOKENS = ["???", "=", "->", "(", ")", ".bogus", "11-", "dff", "AND("]


def _mutations(text: str, seed: int, count: int):
    """Deterministic single-line corruptions of a valid netlist file."""
    rng = DeterministicRng(seed)
    lines = text.splitlines()
    candidates = [
        index for index, line in enumerate(lines)
        if line.strip() and not line.lstrip().startswith("#")
    ]
    for _ in range(count):
        target = candidates[rng.integer(0, len(candidates) - 1)]
        mutated = list(lines)
        style = rng.integer(0, 2)
        if style == 0:  # replace the line with garbage
            mutated[target] = " ".join(
                rng.choice(GARBAGE_TOKENS)
                for _ in range(rng.integer(1, 4))
            )
        elif style == 1:  # truncate the line mid-token
            keep = max(1, len(mutated[target]) // 2)
            mutated[target] = mutated[target][:keep]
        else:  # inject a garbage token into the line
            tokens = mutated[target].split()
            tokens.insert(rng.integer(0, len(tokens)), rng.choice(GARBAGE_TOKENS))
            mutated[target] = " ".join(tokens)
        yield "\n".join(mutated) + "\n"


def _assert_clean_failure(parse, text):
    """Parsing may succeed (some corruptions stay legal) but must never
    escape as anything but a ReproError; ParseErrors carry a line."""
    try:
        parse(text)
    except ParseError as error:
        assert error.line is None or error.line >= 1
        assert "line" in str(error) or error.line is None
    except ReproError:
        pass  # structural error without a position: still a clean failure


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_bnet(seed):
    text = dumps_netlist(build_circuit("b02"))
    for mutated in _mutations(text, seed, 25):
        _assert_clean_failure(lambda t: loads_netlist(t), mutated)


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_bench(seed):
    text = corpus_files()["s27"].read_text()
    for mutated in _mutations(text, seed, 25):
        _assert_clean_failure(
            lambda t: load_netlist(t, fmt="bench", name="fuzz"), mutated
        )


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_blif(seed):
    text = corpus_files()["s344"].read_text()
    for mutated in _mutations(text, seed, 25):
        _assert_clean_failure(
            lambda t: load_netlist(t, fmt="blif", name="fuzz"), mutated
        )


def test_targeted_malformations_report_lines():
    """Known-bad lines must be pinpointed, format by format."""
    cases = [
        ("bnet", "circuit c\ninput a\nfrobnicate x\n", 3),
        ("bench", "INPUT(a)\nOUTPUT(y)\ny = AND(a\n", 3),
        ("blif", ".model m\n.inputs a\n.latch\n", 3),
    ]
    for fmt, text, line in cases:
        with pytest.raises(ParseError) as info:
            load_netlist(text, fmt=fmt, name="bad")
        assert info.value.line == line, fmt
