"""Unit tests for the ISCAS-89 ``.bench`` parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import load_netlist
from repro.frontend.bench import dumps_bench, parse_bench

C17 = """\
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""

S27_FRAGMENT = """\
INPUT(G0)
OUTPUT(G17)
G5 = DFF(G10)
G10 = NOR(G14, G17)
G14 = NOT(G0)
G17 = NOT(G5)
"""


class TestParse:
    def test_c17(self):
        netlist = parse_bench(C17, name="c17")
        assert netlist.name == "c17"
        assert netlist.inputs == ["1", "2", "3", "6", "7"]
        assert netlist.outputs == ["22", "23"]
        assert netlist.num_gates == 6
        assert all(g.gate_type == "nand" for g in netlist.gates.values())

    def test_load_netlist_attaches_outputs_and_validates(self):
        netlist = load_netlist(C17, name="c17")
        assert netlist.outputs == ["22", "23"]

    def test_dff_and_forward_references(self):
        netlist = load_netlist(S27_FRAGMENT, name="frag")
        assert set(netlist.dffs) == {"ff$G5"}
        assert netlist.dffs["ff$G5"].d == "G10"
        assert netlist.dffs["ff$G5"].init == 0

    def test_case_insensitive_and_buf_alias(self):
        netlist = load_netlist(
            "input(a)\noutput(y)\nn1 = not(a)\ny = buff(n1)\n", name="t"
        )
        types = sorted(g.gate_type for g in netlist.gates.values())
        assert types == ["buf", "inv"]

    def test_lowercase_ports_auto_detect_as_bench(self):
        # 'input' is also a .bnet keyword; only 'circuit' may claim bnet
        netlist = load_netlist(
            "input (1)\ninput (2)\noutput (3)\n3 = and(1, 2)\n", name="t"
        )
        assert netlist.inputs == ["1", "2"]
        assert netlist.num_gates == 1

    def test_comments_and_blank_lines(self):
        netlist = load_netlist(
            "# header\n\nINPUT(a)  # trailing\nOUTPUT(y)\ny = NOT(a)\n",
            name="t",
        )
        assert netlist.num_gates == 1

    def test_wide_gates_are_lowered(self):
        text = (
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n"
            "OUTPUT(y)\ny = OR(a, b, c, d, e)\n"
        )
        netlist = load_netlist(text, name="t")
        assert all(len(g.inputs) <= 2 for g in netlist.gates.values())
        # the root keeps the inversion-free type and the driven net
        assert netlist.driver_of("y").gate_type == "or"


class TestErrors:
    @pytest.mark.parametrize(
        "text, line, fragment",
        [
            ("INPUT(a)\ngarbage line\n", 2, "expected INPUT"),
            ("INPUT(a)\ny = FROB(a, a)\n", 2, "unknown .bench operator"),
            ("INPUT(a)\ny = NOT(a, a)\n", 2, "exactly one"),
            ("INPUT(a)\ny = AND(a)\n", 2, "at least 2"),
            ("INPUT(a)\ny = DFF(a, a)\n", 2, "DFF takes exactly one"),
            ("INPUT(a)\nINPUT(a)\n", 2, "already driven"),
            ("INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\n", 3, "duplicate OUTPUT"),
            ("INPUT(a)\ny = AND(a,, a)\n", 2, "empty operand"),
        ],
    )
    def test_parse_errors_carry_line(self, text, line, fragment):
        with pytest.raises(ParseError, match=fragment) as info:
            load_netlist(text, fmt="bench", name="t")
        assert info.value.line == line

    def test_column_reported_for_bad_keyword(self):
        with pytest.raises(ParseError) as info:
            load_netlist("   garbage here\n", fmt="bench", name="t")
        assert info.value.column == 4
        assert "column 4" in str(info.value)

    def test_column_points_at_operator_not_first_occurrence(self):
        # 'FO' also appears inside the LHS name 'FOO'; the diagnostic
        # must point at the operator token, not the first substring hit
        with pytest.raises(ParseError) as info:
            load_netlist("INPUT(a)\n  FOO = FO(a, a)\n", fmt="bench", name="t")
        assert info.value.line == 2
        assert info.value.column == 9

    def test_empty_file(self):
        with pytest.raises(ParseError, match="empty"):
            parse_bench("# only a comment\n")

    def test_undriven_net_is_parse_error(self):
        with pytest.raises(ParseError, match="undriven"):
            load_netlist("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", name="t")


class TestDumps:
    def test_bench_roundtrip(self):
        original = load_netlist(C17, name="c17")
        again = load_netlist(dumps_bench(original), fmt="bench", name="c17")
        assert set(again.gates) == set(original.gates)
        assert again.inputs == original.inputs
        assert again.outputs == original.outputs

    def test_unrepresentable_gate_rejected(self):
        from repro.netlist.builder import NetlistBuilder

        builder = NetlistBuilder("m")
        select = builder.input("s")
        builder.output_net("y", builder.mux(select, builder.input("a"),
                                            builder.input("b")))
        with pytest.raises(ParseError, match="no .bench spelling"):
            dumps_bench(builder.build())
