"""Unit tests for the structural BLIF parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import load_netlist
from repro.frontend.blif import parse_blif
from repro.logic.values import X
from repro.sim.cycle import CycleSimulator

TINY = """\
.model tiny
.inputs a b c
.outputs y
.latch n2 q re clk 0
.names a b n1
11 1
.names n1 c q y
1-- 1
-11 1
.names a n2
0 1
.end
"""


def _truth(text: str, inputs: int):
    """Evaluate a purely combinational BLIF single-output model."""
    netlist = load_netlist(text, fmt="blif")
    sim = CycleSimulator(netlist)
    return [sim.step(vector) for vector in range(1 << inputs)]


class TestParse:
    def test_model_name_and_structure(self):
        netlist = load_netlist(TINY)
        assert netlist.name == "tiny"
        assert netlist.inputs == ["a", "b", "c"]
        assert netlist.outputs == ["y"]
        assert set(netlist.dffs) == {"ff$q"}
        assert netlist.dffs["ff$q"].init == 0

    def test_and_cover(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"
        assert _truth(text, 2) == [0, 0, 0, 1]

    def test_or_cover(self):
        text = (
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n-1 1\n.end\n"
        )
        assert _truth(text, 2) == [0, 1, 1, 1]

    def test_off_set_cover_is_complemented(self):
        # NAND expressed as the off-set: output 0 exactly when a=b=1
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
        assert _truth(text, 2) == [1, 1, 1, 0]

    def test_inverted_literals(self):
        # y = a AND NOT b
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n10 1\n.end\n"
        assert _truth(text, 2) == [0, 1, 0, 0]

    def test_buffer_and_inverter_rows(self):
        buf = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
        inv = ".model m\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n"
        assert _truth(buf, 1) == [0, 1]
        assert _truth(inv, 1) == [1, 0]

    def test_constants(self):
        one = ".model m\n.inputs a\n.outputs y\n.names y\n1\n.end\n"
        zero = ".model m\n.inputs a\n.outputs y\n.names y\n.end\n"
        assert _truth(one, 1) == [1, 1]
        assert _truth(zero, 1) == [0, 0]

    def test_line_continuation(self):
        text = (
            ".model m\n.inputs a \\\n  b\n.outputs y\n"
            ".names a b y\n11 1\n.end\n"
        )
        netlist = load_netlist(text)
        assert netlist.inputs == ["a", "b"]

    def test_inverters_deduplicated_across_covers(self):
        # 'a' is tested in the 0 polarity three times across two covers;
        # the file-wide memo must emit exactly one inverter for it
        text = (
            ".model m\n.inputs a b\n.outputs y z\n"
            ".names a b y\n00 1\n01 1\n"
            ".names a z\n0 1\n"
            ".end\n"
        )
        netlist = load_netlist(text)
        inverter_sources = [
            gate.inputs[0]
            for gate in netlist.gates.values()
            if gate.gate_type == "inv"
        ]
        assert inverter_sources.count("a") == 1
        assert inverter_sources.count("b") == 1

    def test_latch_forms_and_init(self):
        text = (
            ".model m\n.inputs d\n.outputs q0 q1 q2 q3\n"
            ".latch d q0\n"
            ".latch d q1 1\n"
            ".latch d q2 re clk\n"
            ".latch d q3 fe clk 3\n"
            ".end\n"
        )
        netlist = load_netlist(text)
        inits = {dff.q: dff.init for dff in netlist.dffs.values()}
        # unspecified / don't-care / unknown all power up at 0 (documented
        # deviation: grading needs a known start state); explicit 1 survives
        assert inits == {"q0": 0, "q1": 1, "q2": 0, "q3": 0}
        assert X not in inits.values()


class TestErrors:
    @pytest.mark.parametrize(
        "text, line, fragment",
        [
            (".model a\n.model b\n", 2, "second .model"),
            (".model m\n.subckt sub a=b\n", 2, "not supported"),
            (".model m\n.frobnicate\n", 2, "unknown directive"),
            (".model m\n.inputs a\n.latch a q ah ctl\n", 3, "level-sensitive"),
            (".model m\n.inputs a\n.latch a q 7\n", 3, "bad latch init"),
            (".model m\n.inputs a\n.latch a\n", 3, "expected: .latch"),
            (".model m\n.inputs a\nstray row\n", 3, "outside a .names"),
            (".model m\n.inputs a\n.names a y\n2 1\n", 4, "bad cover literal"),
            (".model m\n.inputs a b\n.names a b y\n1 1\n", 4, "1 literals"),
            (".model m\n.inputs a\n.names a y\n1 1\n0 0\n", 5, "mixes on-set"),
            (".model m\n.inputs a\n.end\n.names a y\n", 4, "after .end"),
        ],
    )
    def test_parse_errors_carry_line(self, text, line, fragment):
        with pytest.raises(ParseError, match=fragment) as info:
            parse_blif(text)
        assert info.value.line == line

    def test_cover_literal_column(self):
        with pytest.raises(ParseError) as info:
            parse_blif(".model m\n.inputs a b\n.names a b y\n1x 1\n")
        assert info.value.column == 2

    def test_empty_file(self):
        with pytest.raises(ParseError, match="empty"):
            parse_blif("# nothing\n")

    def test_double_driven_net(self):
        text = (
            ".model m\n.inputs a\n.names a y\n1 1\n.names a y\n0 1\n.end\n"
        )
        with pytest.raises(ParseError, match="duplicate instance") as info:
            parse_blif(text)
        assert info.value.line == 5
