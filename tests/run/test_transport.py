"""Tests for the shard-transport layer: wire protocol, registry, and
the serial/local transports' dynamic-queue contract.

The load-bearing properties: frames round-trip bit-exactly, a scenario
rebuilt from wire artifacts is *identical* to the client-side build
(same faults, same order — the distributed merge invariant), and every
transport produces records the runner merges into the serial result.
"""

import socket

import pytest

from repro.errors import CampaignError
from repro.run.runner import CampaignRunner, plan_windows
from repro.run.spec import CampaignSpec, scenario_from_wire
from repro.run.store import ShardRecord
from repro.run.transport import (
    available_transports,
    create_transport,
    register_transport,
)
from repro.run.transport import wire
from repro.run.transport.base import ShardTransport
from repro.run.transport.local import LocalPoolTransport, SerialTransport
from repro.netlist.textio import dumps_netlist


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestWireFraming:
    def roundtrip(self, kind, header=None, blob=b""):
        client, server = socket.socketpair()
        try:
            wire.send_msg(client, kind, header, blob)
            return wire.recv_msg(server)
        finally:
            client.close()
            server.close()

    def test_header_only_roundtrip(self):
        kind, header, blob = self.roundtrip("ping")
        assert (kind, header, blob) == ("ping", {}, b"")

    def test_header_and_blob_roundtrip(self):
        payload = bytes(range(256)) * 17
        kind, header, blob = self.roundtrip(
            "result", {"index": 3, "fail_bytes": 12}, payload
        )
        assert kind == "result"
        assert header == {"index": 3, "fail_bytes": 12}
        assert blob == payload

    def test_blob_may_contain_newlines(self):
        # The header/blob separator is the *first* newline only.
        _, _, blob = self.roundtrip("artifact", {}, b"line1\nline2\n")
        assert blob == b"line1\nline2\n"

    def test_multiple_frames_in_sequence(self):
        client, server = socket.socketpair()
        try:
            for index in range(5):
                wire.send_msg(client, "shard", {"index": index})
            for index in range(5):
                kind, header, _ = wire.recv_msg(server)
                assert (kind, header["index"]) == ("shard", index)
        finally:
            client.close()
            server.close()

    def test_eof_raises_peer_gone(self):
        client, server = socket.socketpair()
        client.close()
        with pytest.raises(wire.PeerGone):
            wire.recv_msg(server)
        server.close()

    def test_eof_mid_frame_raises_peer_gone(self):
        client, server = socket.socketpair()
        client.sendall(b"\x00\x00\x01\x00partial")  # announces 256 bytes
        client.close()
        with pytest.raises(wire.PeerGone):
            wire.recv_msg(server)
        server.close()

    def test_oversized_frame_refused_on_send(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
        client, server = socket.socketpair()
        try:
            with pytest.raises(wire.WireError):
                wire.send_msg(client, "artifact", {}, b"x" * 128)
        finally:
            client.close()
            server.close()

    def test_oversized_frame_refused_on_receive(self):
        client, server = socket.socketpair()
        try:
            client.sendall(b"\xff\xff\xff\xff")  # ~4 GiB announcement
            with pytest.raises(wire.WireError):
                wire.recv_msg(server)
        finally:
            client.close()
            server.close()


class TestPayloadCodecs:
    def test_cycles_roundtrip(self):
        cycles = [0, 1, -1, 159, 2**31 - 1]
        assert wire.unpack_cycles(wire.pack_cycles(cycles)) == cycles

    def test_empty_cycles(self):
        assert wire.unpack_cycles(wire.pack_cycles([])) == []

    def test_testbench_roundtrip(self, counter_bench):
        restored = wire.unpack_testbench(wire.pack_testbench(counter_bench))
        assert restored.input_names == counter_bench.input_names
        assert restored.vectors == counter_bench.vectors
        assert restored.stimulus_digest() == counter_bench.stimulus_digest()

    def test_garbage_stimulus_raises_wire_error(self):
        with pytest.raises(wire.WireError):
            wire.unpack_testbench(b"not json at all")


class TestParseHosts:
    def test_comma_string(self):
        assert wire.parse_hosts("a:1, b:2 ,c:3") == [
            ("a", 1), ("b", 2), ("c", 3)
        ]

    def test_iterable(self):
        assert wire.parse_hosts(["x:7400"]) == [("x", 7400)]

    @pytest.mark.parametrize(
        "bad", ["nohost", "host:", ":1234", "host:notaport", "h:99999"]
    )
    def test_bad_spellings_raise(self, bad):
        with pytest.raises(CampaignError):
            wire.parse_hosts(bad)

    def test_empty_raises(self):
        with pytest.raises(CampaignError):
            wire.parse_hosts("")


# ----------------------------------------------------------------------
# wire-side scenario rebuild
# ----------------------------------------------------------------------
class TestScenarioFromWire:
    @pytest.mark.parametrize(
        "spec",
        [
            CampaignSpec(circuit="b04", technique="mask_scan"),
            CampaignSpec(
                circuit="b04",
                technique="mask_scan",
                sample=150,
                sampling="stratified",
                seed=7,
            ),
            CampaignSpec(
                circuit="b04", technique="mask_scan", hardening="tmr"
            ),
            CampaignSpec(
                circuit="b06",
                technique="state_scan",
                fault_model="stuck_at_1",
            ),
        ],
        ids=["exhaustive", "stratified-sample", "hardened-tmr", "stuck-at"],
    )
    def test_rebuild_is_identical(self, spec):
        """The remote rebuild grades the same faults in the same order."""
        local = spec.scenario()
        rebuilt = scenario_from_wire(
            dumps_netlist(local.netlist),
            wire.unpack_testbench(wire.pack_testbench(local.testbench)),
            spec.wire_fields(),
        )
        assert len(rebuilt.faults) == len(local.faults)
        assert [
            (fault.flop_name, fault.cycle) for fault in rebuilt.faults
        ] == [(fault.flop_name, fault.cycle) for fault in local.faults]
        assert rebuilt.testbench.vectors == local.testbench.vectors

    def test_cycle_mismatch_raises(self):
        spec = CampaignSpec(circuit="b04", technique="mask_scan")
        local = spec.scenario()
        fields = dict(spec.wire_fields())
        fields["num_cycles"] = local.testbench.num_cycles + 1
        with pytest.raises(CampaignError):
            scenario_from_wire(
                dumps_netlist(local.netlist), local.testbench, fields
            )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestTransportRegistry:
    def test_builtins_registered(self):
        assert {"serial", "local", "tcp"} <= set(available_transports())

    def test_unknown_name_raises(self):
        with pytest.raises(CampaignError, match="unknown transport"):
            create_transport("carrier-pigeon")

    def test_tcp_without_hosts_raises(self):
        with pytest.raises(CampaignError, match="hosts"):
            create_transport("tcp")

    def test_custom_transport_registers(self):
        class Fake(ShardTransport):
            name = "fake"

            def grade_windows(self, spec, spec_dict, windows):
                return iter(())

        register_transport("fake-test", lambda **options: Fake())
        try:
            assert isinstance(create_transport("fake-test"), Fake)
        finally:
            from repro.run.transport import _TRANSPORTS

            _TRANSPORTS.pop("fake-test", None)

    def test_runner_default_resolution(self):
        assert CampaignRunner(workers=1).transport_name == "serial"
        assert CampaignRunner(workers=2).transport_name == "local"
        assert CampaignRunner(hosts="h:1").transport_name == "tcp"
        assert (
            CampaignRunner(workers=4, transport="serial").transport_name
            == "serial"
        )


# ----------------------------------------------------------------------
# serial + local transports
# ----------------------------------------------------------------------
class TestSerialTransport:
    def test_grades_all_windows_with_provenance(self):
        spec = CampaignSpec(circuit="b04", technique="mask_scan")
        windows = plan_windows(spec.resolved_cycles(), 4)
        with SerialTransport() as transport:
            records = list(
                transport.grade_windows(spec, spec.to_dict(), windows)
            )
        assert sorted(record.index for record in records) == [0, 1, 2, 3]
        assert all(record.worker == "inline" for record in records)
        assert all(record.attempts == 1 for record in records)


class TestLocalPoolTransport:
    def test_rejects_single_worker(self):
        with pytest.raises(CampaignError):
            LocalPoolTransport(workers=1)

    def test_dynamic_queue_matches_serial(self):
        """More windows than in-flight slots: the dynamic queue drains
        them all and the merged result is bit-exact with serial."""
        spec = CampaignSpec(circuit="b04", technique="mask_scan")
        serial = CampaignRunner(workers=1).grade(spec)
        # 12 shards against 2 workers * 2 in-flight slots forces several
        # submit-on-complete rounds.
        with CampaignRunner(workers=2, shards=12) as runner:
            pooled = runner.grade(spec)
        assert pooled.fail_cycles == serial.fail_cycles
        assert pooled.vanish_cycles == serial.vanish_cycles

    def test_records_carry_pool_provenance(self):
        spec = CampaignSpec(circuit="b04", technique="mask_scan")
        windows = plan_windows(spec.resolved_cycles(), 5)
        from repro.run import worker

        worker.prewarm(spec)
        with LocalPoolTransport(workers=2) as transport:
            records = list(
                transport.grade_windows(spec, spec.to_dict(), windows)
            )
        assert sorted(record.index for record in records) == list(range(5))
        assert all(record.worker == "pool:2" for record in records)


# ----------------------------------------------------------------------
# store provenance fields
# ----------------------------------------------------------------------
class TestShardRecordProvenance:
    def test_worker_and_attempts_roundtrip(self):
        record = ShardRecord(
            index=1,
            start_cycle=0,
            end_cycle=4,
            num_faults=2,
            fail_cycles=[3, -1],
            vanish_cycles=[-1, 2],
            engine="fused",
            elapsed_s=0.5,
            worker="10.0.0.2:7400",
            attempts=2,
        )
        restored = ShardRecord.from_json_obj(
            __import__("json").loads(record.to_json_line())
        )
        assert restored.worker == "10.0.0.2:7400"
        assert restored.attempts == 2

    def test_old_records_default_provenance(self):
        restored = ShardRecord.from_json_obj(
            {
                "index": 0,
                "start_cycle": 0,
                "end_cycle": 2,
                "num_faults": 1,
                "fail_cycles": [5],
                "vanish_cycles": [-1],
            }
        )
        assert restored.worker == ""
        assert restored.attempts == 1
