"""Tests for the JSONL results store."""

import json
import os

import pytest

from repro.errors import CampaignError
from repro.run.store import STORE_VERSION, ResultsStore, ShardRecord

KEY = {"circuit": "b01", "num_cycles": 8, "seed": 0}
FAULT_KEY = {"fault_model": "seu", "sampling": "uniform", "sample": None, "seed": 0}
WINDOWS = [(0, 4), (4, 8)]


def make_record(index, start, end, count=3):
    return ShardRecord(
        index=index,
        start_cycle=start,
        end_cycle=end,
        num_faults=count,
        fail_cycles=list(range(count)),
        vanish_cycles=[-1] * count,
        engine="fused",
        elapsed_s=0.01,
    )


class TestLifecycle:
    def test_open_creates_manifest(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        with open(store.manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["oracle"] == KEY
        assert manifest["windows"] == [[0, 4], [4, 8]]

    def test_reopen_same_config_ok(self, tmp_path):
        ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)

    def test_reopen_different_plan_adopts_stored_windows(self, tmp_path):
        ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", [(0, 8)])
        assert store.windows == WINDOWS

    def test_reopen_fresh_repins_proposed_plan(self, tmp_path):
        first = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        first.append(make_record(0, 0, 4))
        store = ResultsStore.open(
            str(tmp_path), KEY, "b01-abc", [(0, 8)], fresh=True
        )
        assert store.windows == [(0, 8)]
        assert store.completed() == {}

    def test_reopen_different_oracle_rejected(self, tmp_path):
        ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        with pytest.raises(CampaignError):
            ResultsStore.open(
                str(tmp_path), {**KEY, "seed": 9}, "b01-abc", WINDOWS
            )


class TestFaultKeyRefusal:
    """A store graded under one fault population must refuse another."""

    def open_with(self, root, fault_key, fresh=False):
        return ResultsStore.open(
            str(root), KEY, "b01-abc", WINDOWS, fresh=fresh,
            fault_key=fault_key,
        )

    def test_same_fault_key_resumes(self, tmp_path):
        self.open_with(tmp_path, FAULT_KEY)
        store = self.open_with(tmp_path, dict(FAULT_KEY))
        assert store.windows == WINDOWS

    def test_different_fault_model_refused_with_named_field(self, tmp_path):
        self.open_with(tmp_path, FAULT_KEY)
        with pytest.raises(CampaignError) as excinfo:
            self.open_with(tmp_path, {**FAULT_KEY, "fault_model": "stuck_at_1"})
        message = str(excinfo.value)
        assert "fault_model" in message
        assert "'seu'" in message and "'stuck_at_1'" in message

    def test_different_sampling_seed_refused(self, tmp_path):
        self.open_with(tmp_path, {**FAULT_KEY, "sample": 100, "seed": 0})
        with pytest.raises(CampaignError, match="seed"):
            self.open_with(tmp_path, {**FAULT_KEY, "sample": 100, "seed": 1})

    def test_different_sampling_method_refused(self, tmp_path):
        self.open_with(tmp_path, {**FAULT_KEY, "sample": 50})
        with pytest.raises(CampaignError, match="sampling"):
            self.open_with(
                tmp_path,
                {**FAULT_KEY, "sample": 50, "sampling": "stratified"},
            )

    def test_fresh_repins_the_fault_key(self, tmp_path):
        self.open_with(tmp_path, FAULT_KEY)
        store = self.open_with(
            tmp_path, {**FAULT_KEY, "fault_model": "mbu:2"}, fresh=True
        )
        assert store.completed() == {}
        # and the new key is now the recorded one
        self.open_with(tmp_path, {**FAULT_KEY, "fault_model": "mbu:2"})

    def test_store_without_fault_record_refused(self, tmp_path):
        """A manifest missing the fault section (hand-edited or foreign)
        cannot prove what population its shards grade."""
        store = self.open_with(tmp_path, FAULT_KEY)
        with open(store.manifest_path) as handle:
            manifest = json.load(handle)
        del manifest["fault"]
        with open(store.manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CampaignError, match="fault-population identity"):
            self.open_with(tmp_path, FAULT_KEY)

    def test_old_store_version_refused_with_clear_message(self, tmp_path):
        store = self.open_with(tmp_path, FAULT_KEY)
        with open(store.manifest_path) as handle:
            manifest = json.load(handle)
        manifest["version"] = STORE_VERSION - 1
        with open(store.manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CampaignError, match="store format"):
            self.open_with(tmp_path, FAULT_KEY)

    def test_runner_integration_refuses_mismatched_store(self, tmp_path):
        """End to end: grade a campaign, then impersonate its campaign id
        with a different fault model — the runner must refuse to resume."""
        from repro.run.runner import CampaignRunner
        from repro.run.spec import CampaignSpec

        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=8, sample=5
        )
        runner = CampaignRunner(store_root=str(tmp_path))
        runner.grade(spec)
        other = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=8, sample=5,
            fault_model="stuck_at_1",
        )
        # Different fault model -> different campaign id -> different
        # directory; force the collision a hand-copied store would create.
        os.rename(
            os.path.join(str(tmp_path), spec.campaign_id),
            os.path.join(str(tmp_path), other.campaign_id),
        )
        with pytest.raises(CampaignError, match="fault"):
            runner.grade(other)


class TestShardRecords:
    def test_append_and_completed(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store.append(make_record(0, 0, 4))
        store.append(make_record(1, 4, 8))
        completed = store.completed()
        assert sorted(completed) == [0, 1]
        assert completed[0].fail_cycles == [0, 1, 2]
        assert completed[1].engine == "fused"

    def test_truncated_tail_line_ignored(self, tmp_path):
        """A kill mid-append leaves a partial JSON line; resume skips it."""
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store.append(make_record(0, 0, 4))
        with open(store.shards_path, "a") as handle:
            handle.write(make_record(1, 4, 8).to_json_line()[:25])
        completed = store.completed()
        assert sorted(completed) == [0]

    def test_garbage_lines_ignored(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        with open(store.shards_path, "w") as handle:
            handle.write("not json at all\n")
            handle.write('{"index": 0}\n')  # missing fields
            handle.write(make_record(1, 4, 8).to_json_line() + "\n")
        assert sorted(store.completed()) == [1]

    def test_inconsistent_record_rejected(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        bad = make_record(0, 0, 4)
        bad.num_faults = 99  # arrays no longer match
        with open(store.shards_path, "w") as handle:
            handle.write(bad.to_json_line() + "\n")
        assert store.completed() == {}

    def test_duplicate_index_keeps_last(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store.append(make_record(0, 0, 4))
        newer = make_record(0, 0, 4)
        newer.fail_cycles = [7, 7, 7]
        store.append(newer)
        assert store.completed()[0].fail_cycles == [7, 7, 7]

    def test_reset_drops_records(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store.append(make_record(0, 0, 4))
        store.reset()
        assert store.completed() == {}
        assert os.path.exists(store.manifest_path)
