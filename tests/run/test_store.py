"""Tests for the JSONL results store."""

import json
import os

import pytest

from repro.errors import CampaignError
from repro.run.store import ResultsStore, ShardRecord

KEY = {"circuit": "b01", "num_cycles": 8, "seed": 0}
WINDOWS = [(0, 4), (4, 8)]


def make_record(index, start, end, count=3):
    return ShardRecord(
        index=index,
        start_cycle=start,
        end_cycle=end,
        num_faults=count,
        fail_cycles=list(range(count)),
        vanish_cycles=[-1] * count,
        engine="fused",
        elapsed_s=0.01,
    )


class TestLifecycle:
    def test_open_creates_manifest(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        with open(store.manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["oracle"] == KEY
        assert manifest["windows"] == [[0, 4], [4, 8]]

    def test_reopen_same_config_ok(self, tmp_path):
        ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)

    def test_reopen_different_plan_adopts_stored_windows(self, tmp_path):
        ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", [(0, 8)])
        assert store.windows == WINDOWS

    def test_reopen_fresh_repins_proposed_plan(self, tmp_path):
        first = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        first.append(make_record(0, 0, 4))
        store = ResultsStore.open(
            str(tmp_path), KEY, "b01-abc", [(0, 8)], fresh=True
        )
        assert store.windows == [(0, 8)]
        assert store.completed() == {}

    def test_reopen_different_oracle_rejected(self, tmp_path):
        ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        with pytest.raises(CampaignError):
            ResultsStore.open(
                str(tmp_path), {**KEY, "seed": 9}, "b01-abc", WINDOWS
            )


class TestShardRecords:
    def test_append_and_completed(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store.append(make_record(0, 0, 4))
        store.append(make_record(1, 4, 8))
        completed = store.completed()
        assert sorted(completed) == [0, 1]
        assert completed[0].fail_cycles == [0, 1, 2]
        assert completed[1].engine == "fused"

    def test_truncated_tail_line_ignored(self, tmp_path):
        """A kill mid-append leaves a partial JSON line; resume skips it."""
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store.append(make_record(0, 0, 4))
        with open(store.shards_path, "a") as handle:
            handle.write(make_record(1, 4, 8).to_json_line()[:25])
        completed = store.completed()
        assert sorted(completed) == [0]

    def test_garbage_lines_ignored(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        with open(store.shards_path, "w") as handle:
            handle.write("not json at all\n")
            handle.write('{"index": 0}\n')  # missing fields
            handle.write(make_record(1, 4, 8).to_json_line() + "\n")
        assert sorted(store.completed()) == [1]

    def test_inconsistent_record_rejected(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        bad = make_record(0, 0, 4)
        bad.num_faults = 99  # arrays no longer match
        with open(store.shards_path, "w") as handle:
            handle.write(bad.to_json_line() + "\n")
        assert store.completed() == {}

    def test_duplicate_index_keeps_last(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store.append(make_record(0, 0, 4))
        newer = make_record(0, 0, 4)
        newer.fail_cycles = [7, 7, 7]
        store.append(newer)
        assert store.completed()[0].fail_cycles == [7, 7, 7]

    def test_reset_drops_records(self, tmp_path):
        store = ResultsStore.open(str(tmp_path), KEY, "b01-abc", WINDOWS)
        store.append(make_record(0, 0, 4))
        store.reset()
        assert store.completed() == {}
        assert os.path.exists(store.manifest_path)
