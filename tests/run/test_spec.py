"""Tests for the declarative CampaignSpec."""

import json

import pytest

from repro.errors import CampaignError
from repro.run.spec import CampaignSpec, DEFAULT_CYCLES, PAPER_CYCLES


class TestValidation:
    def test_unknown_technique_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="psychic")

    def test_unknown_testbench_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="mask_scan", testbench="tarot")

    def test_unknown_board_rejected(self):
        with pytest.raises(Exception):
            CampaignSpec(circuit="b01", technique="mask_scan", board="ufo")

    def test_bad_counts_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="mask_scan", num_cycles=0)
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="mask_scan", sample=0)
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="mask_scan", scan_chains=0)

    def test_program_testbench_is_b14_only(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", testbench="program"
        )
        with pytest.raises(CampaignError):
            spec.build_testbench(spec.build_netlist())


class TestResolution:
    def test_b14_defaults_to_paper_scale(self):
        spec = CampaignSpec(circuit="b14", technique="mask_scan")
        assert spec.resolved_cycles() == PAPER_CYCLES["b14"] == 160
        assert spec.resolved_testbench_kind() == "program"

    def test_other_circuits_default_to_random(self):
        spec = CampaignSpec(circuit="b04", technique="mask_scan")
        assert spec.resolved_cycles() == DEFAULT_CYCLES
        assert spec.resolved_testbench_kind() == "random"

    def test_scenario_shapes(self):
        spec = CampaignSpec(
            circuit="b01", technique="state_scan", num_cycles=12
        )
        scenario = spec.scenario()
        assert scenario.testbench.num_cycles == 12
        assert len(scenario.faults) == scenario.netlist.num_ffs * 12

    def test_sampled_faults_subset_and_sorted(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=16, sample=10
        )
        scenario = spec.scenario()
        assert len(scenario.faults) == 10
        assert scenario.faults == sorted(scenario.faults)


class TestSerialization:
    def test_dict_roundtrip(self):
        spec = CampaignSpec(
            circuit="b09",
            technique="time_multiplexed",
            engine="numpy",
            num_cycles=40,
            testbench="burst",
            seed=3,
            sample=25,
            scan_chains=2,
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_dict_is_json_safe(self):
        spec = CampaignSpec(circuit="b14", technique="mask_scan")
        assert CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(
                {"circuit": "b01", "technique": "mask_scan", "warp": 9}
            )


class TestIdentity:
    def test_campaign_id_stable_and_filesystem_safe(self):
        spec = CampaignSpec(circuit="proc:48", technique="mask_scan")
        assert spec.campaign_id == spec.campaign_id
        assert "/" not in spec.campaign_id and ":" not in spec.campaign_id

    def test_techniques_share_an_oracle(self):
        base = CampaignSpec(circuit="b06", technique="mask_scan")
        assert (
            base.campaign_id
            == base.with_technique("time_multiplexed").campaign_id
        )

    def test_different_stimulus_different_oracle(self):
        a = CampaignSpec(circuit="b06", technique="mask_scan", seed=0)
        b = CampaignSpec(circuit="b06", technique="mask_scan", seed=1)
        assert a.campaign_id != b.campaign_id


class TestMatrix:
    def test_full_expansion(self):
        specs = CampaignSpec.matrix(
            circuits=["b01", "b02"],
            techniques=["mask_scan", "state_scan"],
            engines=["numpy", "fused"],
            num_cycles=8,
        )
        assert len(specs) == 8
        assert len({spec.campaign_id for spec in specs}) == 2  # per circuit
        assert all(spec.num_cycles == 8 for spec in specs)

    def test_defaults_cover_all_techniques(self):
        from repro.emu.instrument import TECHNIQUES

        specs = CampaignSpec.matrix(circuits=["b01"])
        assert [spec.technique for spec in specs] == list(TECHNIQUES)
