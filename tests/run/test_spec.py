"""Tests for the declarative CampaignSpec."""

import json

import pytest

from repro.errors import CampaignError
from repro.run.spec import CampaignSpec, DEFAULT_CYCLES, PAPER_CYCLES


class TestValidation:
    def test_unknown_technique_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="psychic")

    def test_unknown_testbench_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="mask_scan", testbench="tarot")

    def test_unknown_board_rejected(self):
        with pytest.raises(Exception):
            CampaignSpec(circuit="b01", technique="mask_scan", board="ufo")

    def test_bad_counts_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="mask_scan", num_cycles=0)
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="mask_scan", sample=0)
        with pytest.raises(CampaignError):
            CampaignSpec(circuit="b01", technique="mask_scan", scan_chains=0)

    def test_program_testbench_is_b14_only(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", testbench="program"
        )
        with pytest.raises(CampaignError):
            spec.build_testbench(spec.build_netlist())


class TestResolution:
    def test_b14_defaults_to_paper_scale(self):
        spec = CampaignSpec(circuit="b14", technique="mask_scan")
        assert spec.resolved_cycles() == PAPER_CYCLES["b14"] == 160
        assert spec.resolved_testbench_kind() == "program"

    def test_other_circuits_default_to_random(self):
        spec = CampaignSpec(circuit="b04", technique="mask_scan")
        assert spec.resolved_cycles() == DEFAULT_CYCLES
        assert spec.resolved_testbench_kind() == "random"

    def test_scenario_shapes(self):
        spec = CampaignSpec(
            circuit="b01", technique="state_scan", num_cycles=12
        )
        scenario = spec.scenario()
        assert scenario.testbench.num_cycles == 12
        assert len(scenario.faults) == scenario.netlist.num_ffs * 12

    def test_sampled_faults_subset_and_sorted(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=16, sample=10
        )
        scenario = spec.scenario()
        assert len(scenario.faults) == 10
        assert scenario.faults == sorted(scenario.faults)


class TestSerialization:
    def test_dict_roundtrip(self):
        spec = CampaignSpec(
            circuit="b09",
            technique="time_multiplexed",
            engine="numpy",
            num_cycles=40,
            testbench="burst",
            seed=3,
            sample=25,
            scan_chains=2,
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_dict_is_json_safe(self):
        spec = CampaignSpec(circuit="b14", technique="mask_scan")
        assert CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_dict(
                {"circuit": "b01", "technique": "mask_scan", "warp": 9}
            )


class TestIdentity:
    def test_campaign_id_stable_and_filesystem_safe(self):
        spec = CampaignSpec(circuit="proc:48", technique="mask_scan")
        assert spec.campaign_id == spec.campaign_id
        assert "/" not in spec.campaign_id and ":" not in spec.campaign_id

    def test_techniques_share_an_oracle(self):
        base = CampaignSpec(circuit="b06", technique="mask_scan")
        assert (
            base.campaign_id
            == base.with_technique("time_multiplexed").campaign_id
        )

    def test_different_stimulus_different_oracle(self):
        a = CampaignSpec(circuit="b06", technique="mask_scan", seed=0)
        b = CampaignSpec(circuit="b06", technique="mask_scan", seed=1)
        assert a.campaign_id != b.campaign_id


class TestFaultModelField:
    def test_unknown_fault_model_rejected(self):
        with pytest.raises(CampaignError, match="fault model"):
            CampaignSpec(circuit="b01", technique="mask_scan", fault_model="prayer")

    def test_unknown_sampling_rejected(self):
        with pytest.raises(CampaignError, match="sampling"):
            CampaignSpec(circuit="b01", technique="mask_scan", sampling="vibes")

    def test_default_model_is_seu(self):
        spec = CampaignSpec(circuit="b01", technique="mask_scan")
        assert spec.fault_model == "seu"
        assert spec.fault_model_obj().transient

    def test_fault_model_changes_oracle_identity(self):
        seu = CampaignSpec(circuit="b06", technique="mask_scan")
        stuck = CampaignSpec(
            circuit="b06", technique="mask_scan", fault_model="stuck_at_0"
        )
        assert seu.campaign_id != stuck.campaign_id
        assert seu.oracle_key()["fault_model"] == "seu"
        assert stuck.oracle_key()["fault_model"] == "stuck_at_0"

    def test_sampling_method_changes_oracle_identity(self):
        uniform = CampaignSpec(
            circuit="b06", technique="mask_scan", sample=20
        )
        stratified = CampaignSpec(
            circuit="b06", technique="mask_scan", sample=20,
            sampling="stratified",
        )
        assert uniform.campaign_id != stratified.campaign_id

    def test_model_population_flows_into_scenario(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=10,
            fault_model="stuck_at_1",
        )
        scenario = spec.scenario()
        assert len(scenario.faults) == scenario.netlist.num_ffs * 10
        assert all(fault.persistent for fault in scenario.faults)
        assert all(fault.force_value() == 1 for fault in scenario.faults)

    def test_stratified_sample_covers_flops(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=20,
            sample=10, sampling="stratified",
        )
        scenario = spec.scenario()
        flops = {fault.flop_index for fault in scenario.faults}
        assert len(flops) >= min(10, scenario.netlist.num_ffs)

    def test_fault_key_contents(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", sample=50, seed=3,
            fault_model="mbu:2", sampling="stratified",
        )
        assert spec.fault_key() == {
            "fault_model": "mbu:2",
            "sampling": "stratified",
            "sample": 50,
            "seed": 3,
        }

    def test_roundtrip_with_new_fields(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan",
            fault_model="intermittent:6:2", sampling="stratified", sample=9,
        )
        assert CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_old_spec_dicts_still_load(self):
        """Spec dicts persisted before the fault-model fields existed
        must resolve to the SEU defaults."""
        spec = CampaignSpec.from_dict(
            {"circuit": "b01", "technique": "mask_scan", "sample": 5}
        )
        assert spec.fault_model == "seu"
        assert spec.sampling == "uniform"


class TestMatrix:
    def test_full_expansion(self):
        specs = CampaignSpec.matrix(
            circuits=["b01", "b02"],
            techniques=["mask_scan", "state_scan"],
            engines=["numpy", "fused"],
            num_cycles=8,
        )
        assert len(specs) == 8
        assert len({spec.campaign_id for spec in specs}) == 2  # per circuit
        assert all(spec.num_cycles == 8 for spec in specs)

    def test_defaults_cover_all_techniques(self):
        from repro.emu.instrument import TECHNIQUES

        specs = CampaignSpec.matrix(circuits=["b01"])
        assert [spec.technique for spec in specs] == list(TECHNIQUES)
