"""Tests for the ``python -m repro`` command line."""

import json

import pytest

from repro.run.cli import main


class TestRun:
    def test_run_prints_summary_and_persists(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--circuit", "b04",
                "--technique", "time_multiplexed",
                "--cycles", "16",
                "--store", str(tmp_path),
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "time_multiplexed on b04" in out
        assert "us/fault" in out
        stores = list(tmp_path.iterdir())
        assert len(stores) == 1
        assert (stores[0] / "shards.jsonl").exists()

    def test_run_resumes_from_store(self, tmp_path, capsys):
        args = [
            "run",
            "--circuit", "b01",
            "--technique", "mask_scan",
            "--cycles", "12",
            "--store", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "resuming" in capsys.readouterr().out

    def test_run_json_record(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--circuit", "b01",
                "--technique", "mask_scan",
                "--cycles", "10",
                "--no-store",
                "--quiet",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["spec"]["circuit"] == "b01"
        assert payload["total_cycles"] > 0
        assert set(payload["classification"]) == {
            "failure", "latent", "silent"
        }

    def test_unknown_circuit_is_an_error_not_a_traceback(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "b99",
                "--technique", "mask_scan",
                "--no-store", "--quiet",
            ]
        )
        assert code == 1
        assert "unknown circuit" in capsys.readouterr().err


class TestSweep:
    def test_sweep_renders_all_techniques(self, capsys):
        code = main(
            [
                "sweep",
                "--circuits", "b01", "b06",
                "--cycles", "12",
                "--no-store",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("Sweep — ") == 2
        for technique in ("mask_scan", "state_scan", "time_multiplexed"):
            assert technique in out

    def test_multi_engine_sweep_disables_store(self, tmp_path, capsys):
        """With a store, a second engine would 'resume' from the first
        engine's shards and never grade; multi-engine sweeps grade
        fresh instead."""
        code = main(
            [
                "sweep",
                "--circuits", "b01",
                "--engines", "fused", "numpy",
                "--cycles", "8",
                "--store", str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        assert "store disabled" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_b14_paper_reference_only_at_paper_scale(self, capsys):
        code = main(
            [
                "sweep",
                "--circuits", "b01",
                "--cycles", "8",
                "--no-store", "--quiet",
            ]
        )
        assert code == 0
        assert "paper reference" not in capsys.readouterr().out


class TestReport:
    def test_report_small_circuit(self, capsys):
        code = main(
            [
                "report",
                "--circuit", "b03",
                "--cycles", "12",
                "--no-crossover",
                "--no-store",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Fault classification" in out
        assert "fastest technique on b03" in out


class TestBench:
    def test_bench_quick_single_worker(self, tmp_path, capsys):
        json_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--circuit", "b01",
                "--cycles", "12",
                "--workers", "1",
                "--repeats", "1",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        assert "Sharded runner" in capsys.readouterr().out
        payload = json.loads(json_path.read_text())
        assert payload["rows"][0]["workers"] == 1
