"""Tests for the ``python -m repro`` command line."""

import json

import pytest

from repro.run.cli import main


class TestRun:
    def test_run_prints_summary_and_persists(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--circuit", "b04",
                "--technique", "time_multiplexed",
                "--cycles", "16",
                "--store", str(tmp_path),
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "time_multiplexed on b04" in out
        assert "us/fault" in out
        stores = list(tmp_path.iterdir())
        assert len(stores) == 1
        assert (stores[0] / "shards.jsonl").exists()

    def test_run_resumes_from_store(self, tmp_path, capsys):
        args = [
            "run",
            "--circuit", "b01",
            "--technique", "mask_scan",
            "--cycles", "12",
            "--store", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "resuming" in capsys.readouterr().out

    def test_run_json_record(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--circuit", "b01",
                "--technique", "mask_scan",
                "--cycles", "10",
                "--no-store",
                "--quiet",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["spec"]["circuit"] == "b01"
        assert payload["total_cycles"] > 0
        assert set(payload["classification"]) == {
            "failure", "latent", "silent"
        }

    def test_unknown_circuit_is_an_error_not_a_traceback(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "b99",
                "--technique", "mask_scan",
                "--no-store", "--quiet",
            ]
        )
        assert code == 1
        assert "unknown circuit" in capsys.readouterr().err


class TestFaultModelFlags:
    def test_stuck_at_sampled_run_reports_intervals_and_resumes(
        self, tmp_path, capsys
    ):
        args = [
            "run",
            "--circuit", "b04",
            "--technique", "time_multiplexed",
            "--fault-model", "stuck_at_1",
            "--sample", "60",
            "--cycles", "16",
            "--store", str(tmp_path),
            "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "sampled 60/" in out
        for fault_class in ("failure", "latent", "silent"):
            assert fault_class in out
        assert "%" in out and "[" in out  # interval rendering
        # rerun resumes the same store rather than regrading
        assert main(args[:-1]) == 0  # drop --quiet to see shard lines
        assert "resuming" in capsys.readouterr().out

    def test_mbu_run_smoke(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "b06",
                "--technique", "mask_scan",
                "--fault-model", "mbu:2",
                "--cycles", "10",
                "--no-store", "--quiet",
            ]
        )
        assert code == 0
        assert "mask_scan on b06" in capsys.readouterr().out

    def test_stratified_sampling_flag(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "b06",
                "--technique", "mask_scan",
                "--sample", "40",
                "--sampling", "stratified",
                "--cycles", "12",
                "--no-store", "--quiet",
            ]
        )
        assert code == 0
        assert "stratified" in capsys.readouterr().out

    def test_adaptive_ci_target(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "b01",
                "--technique", "mask_scan",
                "--cycles", "16",
                "--sample", "8",
                "--ci-target", "0.3",
                "--ci-method", "clopper_pearson",
                "--no-store", "--quiet",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive: target half-width" in out
        payload = json.loads(out[out.index("{"):])
        assert payload["adaptive_rounds"]
        assert payload["estimates"]["failure"]["method"] == "clopper_pearson"

    def test_unknown_fault_model_is_an_error_not_a_traceback(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "b01",
                "--fault-model", "gremlins",
                "--no-store", "--quiet",
            ]
        )
        assert code == 1
        assert "unknown fault model" in capsys.readouterr().err


class TestSamplingError:
    def test_sampling_error_table(self, capsys):
        code = main(
            [
                "sampling-error",
                "--circuits", "b01",
                "--samples", "20",
                "--cycles", "16",
                "--no-store", "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sampling error" in out
        assert "exhaustive" in out and "covered" in out
        assert "interval coverage" in out


class TestSweep:
    def test_sweep_renders_all_techniques(self, capsys):
        code = main(
            [
                "sweep",
                "--circuits", "b01", "b06",
                "--cycles", "12",
                "--no-store",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("Sweep — ") == 2
        for technique in ("mask_scan", "state_scan", "time_multiplexed"):
            assert technique in out

    def test_multi_engine_sweep_disables_store(self, tmp_path, capsys):
        """With a store, a second engine would 'resume' from the first
        engine's shards and never grade; multi-engine sweeps grade
        fresh instead."""
        code = main(
            [
                "sweep",
                "--circuits", "b01",
                "--engines", "fused", "numpy",
                "--cycles", "8",
                "--store", str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 0
        assert "store disabled" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_b14_paper_reference_only_at_paper_scale(self, capsys):
        code = main(
            [
                "sweep",
                "--circuits", "b01",
                "--cycles", "8",
                "--no-store", "--quiet",
            ]
        )
        assert code == 0
        assert "paper reference" not in capsys.readouterr().out


class TestReport:
    def test_report_small_circuit(self, capsys):
        code = main(
            [
                "report",
                "--circuit", "b03",
                "--cycles", "12",
                "--no-crossover",
                "--no-store",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Fault classification" in out
        assert "fastest technique on b03" in out


class TestBench:
    def test_bench_quick_single_worker(self, tmp_path, capsys):
        json_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--circuit", "b01",
                "--cycles", "12",
                "--workers", "1",
                "--repeats", "1",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        assert "Sharded runner" in capsys.readouterr().out
        payload = json.loads(json_path.read_text())
        assert payload["rows"][0]["workers"] == 1


class TestHelpText:
    def test_workers_ping_help_documents_contract(self, capsys):
        """`workers ping --help` must spell out the exit-code contract
        and the --json schema — fleet scripts are written against it."""
        with pytest.raises(SystemExit) as excinfo:
            main(["workers", "ping", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "every probed worker answered" in out
        assert "at least one worker was unreachable" in out
        for key in ("alive", "rtt_ms", "protocol", "uptime_s",
                    "campaigns_cached", "shards_graded"):
            assert key in out, f"--json schema key {key!r} missing from help"

    def test_serve_rejects_no_store(self, capsys):
        code = main(["serve", "--no-store"])
        assert code == 1
        assert "--no-store" in capsys.readouterr().err
