"""Tests for the TCP worker daemon and the fault-tolerant tcp transport.

Three layers of assurance, all anchored on bit-exactness with the
serial reference path:

* **protocol** — in-thread daemons: digest-first negotiation (cold
  transfer, warm memo, disk-cache survival across a daemon restart),
  ping/status, and protocol errors that must not kill the connection.
* **fleet grading** — real ``repro worker`` subprocesses: a campaign
  fanned across two daemons merges bit-exact with serial and the local
  pool, and the dynamic queue feeds both hosts.
* **fault tolerance** — a worker SIGKILLed mid-shard, a wedged worker
  exceeding ``--shard-timeout``, and a whole fleet dying: lost shards
  re-queue (provenance records the retry), completed shards stay
  checkpointed, and the store resumes on any transport.

The kill tests trigger off the runner's own progress callback (fire
after N completed shards) rather than wall-clock timers, so they stay
deterministic on a loaded machine.
"""

import os
import re
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.errors import CampaignError
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec
from repro.run.store import ResultsStore
from repro.run.transport import wire
from repro.run.transport.daemon import TEST_DELAY_ENV, WorkerDaemon
from repro.run.transport.tcp import TcpTransport, ping_host

SRC_ROOT = os.path.dirname(os.path.dirname(repro.__file__))

SPEC = CampaignSpec(circuit="b04", technique="mask_scan")


# ----------------------------------------------------------------------
# daemons
# ----------------------------------------------------------------------
@pytest.fixture
def daemon():
    """One in-thread daemon on an ephemeral port."""
    server = WorkerDaemon(port=0, quiet=True)
    port = server.bind()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"127.0.0.1:{port}"
    server.shutdown()


def start_worker_process(extra_env=None):
    """A real ``repro worker`` subprocess; returns (proc, host:port)."""
    env = {**os.environ, "PYTHONPATH": SRC_ROOT}
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--listen", "127.0.0.1:0", "--quiet"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"worker did not announce its port: {line!r}"
    return proc, f"{match.group(1)}:{match.group(2)}"


@pytest.fixture
def worker_fleet():
    """Spawner for subprocess workers, all reaped on exit."""
    procs = []

    def spawn(extra_env=None):
        proc, address = start_worker_process(extra_env)
        procs.append(proc)
        return proc, address

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


@pytest.fixture(scope="module")
def serial_oracle():
    return CampaignRunner(workers=1).grade(SPEC)


def shard_store(store_root):
    return ResultsStore(os.path.join(str(store_root), SPEC.campaign_id))


# ----------------------------------------------------------------------
# protocol: negotiation, caching, status
# ----------------------------------------------------------------------
class TestDigestNegotiation:
    def test_cold_then_warm_then_restart(
        self, daemon, serial_oracle, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        server, address = daemon

        with CampaignRunner(hosts=address) as runner:
            graded = runner.grade(SPEC)
        assert graded.fail_cycles == serial_oracle.fail_cycles
        assert graded.vanish_cycles == serial_oracle.vanish_cycles
        # Cold daemon + empty wire store: both artifacts were missing
        # and had to cross the wire.
        assert server.stats["digest_misses"] == 2
        shipped = server.stats["artifact_bytes_received"]
        assert shipped > 0

        # Warm daemon, new connection: the scenario memo answers the
        # digests; nothing is re-shipped.
        with CampaignRunner(hosts=address) as runner:
            runner.grade(SPEC)
        assert server.stats["digest_hits"] >= 2
        assert server.stats["artifact_bytes_received"] == shipped

        # "Restarted" daemon sharing the disk cache: the wire store
        # answers the digests, so a fresh process still skips transfer.
        restarted = WorkerDaemon(port=0, quiet=True)
        port = restarted.bind()
        threading.Thread(target=restarted.serve_forever, daemon=True).start()
        try:
            with CampaignRunner(hosts=f"127.0.0.1:{port}") as runner:
                regraded = runner.grade(SPEC)
            assert regraded.fail_cycles == serial_oracle.fail_cycles
            assert restarted.stats["digest_hits"] == 2
            assert restarted.stats["digest_misses"] == 0
            assert restarted.stats["artifact_bytes_received"] == 0
        finally:
            restarted.shutdown()

    def test_corrupt_wire_store_entry_reads_as_miss(
        self, daemon, serial_oracle, tmp_path, monkeypatch
    ):
        """A flipped bit in the on-disk wire store must make the daemon
        re-request the artifact, not grade a poisoned scenario."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        server, address = daemon
        with CampaignRunner(hosts=address) as runner:
            runner.grade(SPEC)

        wire_root = tmp_path / "artifacts" / "wire"
        entries = [p for p in wire_root.rglob("*") if p.is_file()]
        assert len(entries) == 2
        for entry in entries:
            entry.write_bytes(b"corrupted" + entry.read_bytes()[9:])

        fresh = WorkerDaemon(port=0, quiet=True)
        port = fresh.bind()
        threading.Thread(target=fresh.serve_forever, daemon=True).start()
        try:
            with CampaignRunner(hosts=f"127.0.0.1:{port}") as runner:
                regraded = runner.grade(SPEC)
            assert regraded.fail_cycles == serial_oracle.fail_cycles
            # Both corrupted payloads were rejected and re-shipped.
            assert fresh.stats["digest_misses"] == 2
            assert fresh.stats["artifact_bytes_received"] > 0
        finally:
            fresh.shutdown()

    def test_records_carry_worker_provenance(self, daemon, tmp_path):
        _, address = daemon
        store_root = tmp_path / "runs"
        with CampaignRunner(hosts=address, store_root=str(store_root)) as runner:
            runner.grade(SPEC)
        records = shard_store(store_root).completed()
        assert records
        assert all(record.worker == address for record in records.values())
        assert all(record.attempts == 1 for record in records.values())

    def test_ping_reports_status(self, daemon):
        server, address = daemon
        host, port = address.rsplit(":", 1)
        status = ping_host((host, int(port)))
        assert status["alive"] is True
        assert status["protocol"] == wire.PROTOCOL_VERSION
        assert status["pid"] == os.getpid()
        assert {"native", "threads"} <= set(status["kernel"])
        assert "digest_hits" in status and "shards_graded" in status
        assert status["rtt_ms"] >= 0

    def test_ping_dead_host(self):
        status = ping_host(("127.0.0.1", 1), timeout=0.5)
        assert status["alive"] is False
        assert "error" in status

    def test_shard_before_prepare_is_error_not_disconnect(self, daemon):
        _, address = daemon
        host, port = address.rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            sock.settimeout(5)
            wire.send_msg(sock, "shard", {"index": 0, "start_cycle": 0,
                                          "end_cycle": 1})
            kind, header, _ = wire.recv_msg(sock)
            assert kind == "error"
            assert "prepare" in header["message"]
            # The connection survives the error: ping still answers.
            wire.send_msg(sock, "ping")
            kind, _, _ = wire.recv_msg(sock)
            assert kind == "status"

    def test_protocol_version_mismatch_rejected(self, daemon):
        _, address = daemon
        host, port = address.rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            sock.settimeout(5)
            wire.send_msg(
                sock,
                "prepare",
                {"protocol": 999, "campaign_id": "x",
                 "netlist_digest": "0", "stimulus_digest": "0"},
            )
            kind, header, _ = wire.recv_msg(sock)
            assert kind == "error"
            assert "version" in header["message"]


# ----------------------------------------------------------------------
# fleet grading (subprocess daemons)
# ----------------------------------------------------------------------
class TestFleetGrading:
    def test_two_workers_bit_exact_with_serial_and_pool(
        self, worker_fleet, serial_oracle
    ):
        """The acceptance invariant: one campaign over two real TCP
        workers == serial == local pool, bit for bit."""
        _, address_a = worker_fleet()
        _, address_b = worker_fleet()

        with CampaignRunner(workers=2, shards=8) as runner:
            pooled = runner.grade(SPEC)
        with CampaignRunner(hosts=f"{address_a},{address_b}", shards=8) as runner:
            fleet = runner.grade(SPEC)

        assert fleet.fail_cycles == serial_oracle.fail_cycles
        assert fleet.vanish_cycles == serial_oracle.vanish_cycles
        assert fleet.fail_cycles == pooled.fail_cycles
        assert fleet.vanish_cycles == pooled.vanish_cycles
        assert fleet.outcome_digest() == serial_oracle.outcome_digest()

    def test_work_is_stolen_dynamically(self, worker_fleet, tmp_path):
        """Both workers contribute: the dynamic queue hands windows to
        whichever worker is idle, so neither host grades everything."""
        _, address_a = worker_fleet({TEST_DELAY_ENV: "0.15"})
        _, address_b = worker_fleet({TEST_DELAY_ENV: "0.15"})
        store_root = tmp_path / "runs"
        with CampaignRunner(
            hosts=f"{address_a},{address_b}",
            shards=8,
            store_root=str(store_root),
        ) as runner:
            runner.grade(SPEC)
        records = shard_store(store_root).completed()
        assert len(records) == 8
        workers_seen = {record.worker for record in records.values()}
        assert workers_seen == {address_a, address_b}


# ----------------------------------------------------------------------
# fault tolerance
# ----------------------------------------------------------------------
class TestShardLoss:
    def test_sigkill_mid_campaign_retries_bit_exact(
        self, worker_fleet, serial_oracle, tmp_path
    ):
        """Kill one of two workers mid-shard: its in-flight window is
        re-queued to the survivor, the merge is bit-exact with serial,
        and the store both records the retry and resumes cleanly."""
        # The victim holds each shard 0.8s; the survivor is quick. After
        # the survivor's third completed shard the victim is parked in
        # its first shard's sleep — SIGKILL lands mid-shard by design.
        victim, address_a = worker_fleet({TEST_DELAY_ENV: "0.8"})
        _, address_b = worker_fleet({TEST_DELAY_ENV: "0.05"})
        store_root = tmp_path / "runs"
        completed = []

        def kill_after_three(line):
            if "cycles [" in line:
                completed.append(line)
                if len(completed) == 3 and victim.poll() is None:
                    victim.kill()

        with CampaignRunner(
            hosts=f"{address_a},{address_b}",
            shards=8,
            store_root=str(store_root),
            progress=kill_after_three,
        ) as runner:
            merged = runner.grade(SPEC)

        assert victim.poll() is not None, "victim was never killed"
        assert merged.fail_cycles == serial_oracle.fail_cycles
        assert merged.vanish_cycles == serial_oracle.vanish_cycles

        records = shard_store(store_root).completed()
        assert len(records) == 8
        # The victim's in-flight shard was re-dispatched: provenance
        # shows a second attempt landing on the survivor.
        retried = [r for r in records.values() if r.attempts > 1]
        assert retried, "no shard records a retry"
        assert all(r.worker == address_b for r in retried)

        # The store resumes cleanly on a different transport.
        lines = []
        resumed = CampaignRunner(
            workers=1, store_root=str(store_root), progress=lines.append
        ).grade(SPEC)
        assert resumed.fail_cycles == serial_oracle.fail_cycles
        assert any("resuming: 8/8" in line for line in lines)

    def test_hung_worker_exceeds_shard_timeout(
        self, worker_fleet, serial_oracle
    ):
        """A wedged worker (heartbeating but not finishing) trips the
        per-shard deadline; its window re-queues to the healthy one."""
        _, slow = worker_fleet({TEST_DELAY_ENV: "30"})
        _, fast = worker_fleet()
        with CampaignRunner(
            hosts=f"{slow},{fast}", shards=4, shard_timeout=1.5
        ) as runner:
            started = time.perf_counter()
            merged = runner.grade(SPEC)
            elapsed = time.perf_counter() - started
        assert merged.fail_cycles == serial_oracle.fail_cycles
        assert merged.vanish_cycles == serial_oracle.vanish_cycles
        # Never waited out the 30s wedge — the deadline cut it loose.
        assert elapsed < 20

    def test_whole_fleet_dead_fails_loudly_then_resumes(
        self, worker_fleet, serial_oracle, tmp_path
    ):
        """Every worker dying mid-campaign is a hard error naming the
        situation — but completed shards survive in the store and a
        later run (any transport) picks up where the fleet died."""
        victim, address = worker_fleet({TEST_DELAY_ENV: "0.5"})
        store_root = tmp_path / "runs"

        def kill_after_first(line):
            if "cycles [" in line and victim.poll() is None:
                victim.kill()

        with pytest.raises(CampaignError, match="TCP workers lost"):
            with CampaignRunner(
                hosts=address,
                shards=4,
                store_root=str(store_root),
                progress=kill_after_first,
            ) as runner:
                runner.grade(SPEC)

        store = shard_store(store_root)
        done_before = len(store.completed())
        assert 0 < done_before < 4

        resumed = CampaignRunner(
            workers=1, store_root=str(store_root)
        ).grade(SPEC)
        assert resumed.fail_cycles == serial_oracle.fail_cycles
        assert resumed.vanish_cycles == serial_oracle.vanish_cycles
        assert len(store.completed()) == 4

    def test_unreachable_fleet_raises(self):
        with CampaignRunner(hosts="127.0.0.1:1", shards=2) as runner:
            with pytest.raises(CampaignError, match="workers lost"):
                runner.grade(SPEC)


# ----------------------------------------------------------------------
# b14 at paper scale over a fleet (the acceptance campaign)
# ----------------------------------------------------------------------
class TestPaperScaleFleet:
    def test_b14_exhaustive_two_workers_bit_exact(self, worker_fleet):
        spec = CampaignSpec(circuit="b14", technique="time_multiplexed")
        serial = CampaignRunner(workers=1).grade(spec)
        _, address_a = worker_fleet()
        _, address_b = worker_fleet()
        with CampaignRunner(
            hosts=f"{address_a},{address_b}", shards=8
        ) as runner:
            fleet = runner.grade(spec)
        assert fleet.outcome_digest() == serial.outcome_digest()
        assert fleet.fail_cycles == serial.fail_cycles
        assert fleet.vanish_cycles == serial.vanish_cycles


class TestTcpTransportUnit:
    def test_effective_workers_counts_hosts(self):
        transport = TcpTransport(["a:1", "b:2", "c:3"])
        assert transport.effective_workers() == 3
        assert "3 hosts" in transport.describe()
        transport.close()
