"""Tests for the sharded, resumable campaign runner.

The load-bearing property: a campaign graded in shards — in-process or
across a process pool, fresh or resumed from a half-written store — is
*bit-exact* with the serial `run_campaign` path, for every technique.
"""

import pytest

from repro.emu.board import RC1000
from repro.emu.campaign import run_campaign
from repro.emu.instrument import TECHNIQUES
from repro.errors import CampaignError
from repro.run import worker
from repro.run.runner import CampaignRunner, plan_windows
from repro.run.spec import CampaignSpec
from repro.sim.parallel import grade_faults


def serial_reference(spec, scan_chains=None):
    """The serial path for a spec: direct grade + run_campaign."""
    scenario = spec.scenario()
    oracle = grade_faults(
        scenario.netlist, scenario.testbench, scenario.faults,
        backend=spec.engine,
    )
    return run_campaign(
        scenario.netlist,
        scenario.testbench,
        spec.technique,
        faults=scenario.faults,
        oracle=oracle,
        scan_chains=scan_chains if scan_chains is not None else spec.scan_chains,
    )


def assert_bit_exact(sharded, serial):
    assert sharded.breakdown.prologue == serial.breakdown.prologue
    assert sharded.breakdown.setup == serial.breakdown.setup
    assert sharded.breakdown.run == serial.breakdown.run
    assert sharded.breakdown.readback == serial.breakdown.readback
    assert sharded.breakdown.extra == serial.breakdown.extra
    assert sharded.total_cycles == serial.total_cycles
    assert sharded.timing.milliseconds == serial.timing.milliseconds
    assert sharded.dictionary.counts() == serial.dictionary.counts()


class TestPlanWindows:
    def test_covers_all_cycles_contiguously(self):
        windows = plan_windows(23, 5)
        assert windows[0].start_cycle == 0
        assert windows[-1].end_cycle == 23
        for before, after in zip(windows, windows[1:]):
            assert before.end_cycle == after.start_cycle

    def test_balanced(self):
        sizes = [w.end_cycle - w.start_cycle for w in plan_windows(23, 5)]
        assert max(sizes) - min(sizes) <= 1

    def test_capped_at_cycle_count(self):
        assert len(plan_windows(3, 16)) == 3

    def test_zero_cycles_rejected(self):
        with pytest.raises(CampaignError):
            plan_windows(0, 4)


class TestShardedEqualsSerial:
    """Sharded vs serial bit-exact equivalence: randomized circuits x
    all three techniques (the PR's core acceptance property)."""

    @pytest.mark.parametrize("technique", TECHNIQUES)
    @pytest.mark.parametrize(
        "circuit,cycles,seed",
        [("b01", 18, 3), ("b04", 21, 11), ("b09", 16, 7)],
    )
    def test_in_process_shards(self, technique, circuit, cycles, seed):
        spec = CampaignSpec(
            circuit=circuit, technique=technique, num_cycles=cycles, seed=seed
        )
        sharded = CampaignRunner(workers=1, shards=5).run(spec)
        assert_bit_exact(sharded, serial_reference(spec))

    def test_process_pool(self):
        spec = CampaignSpec(
            circuit="b04", technique="time_multiplexed", num_cycles=20, seed=2
        )
        sharded = CampaignRunner(workers=2, shards=4).run(spec)
        assert_bit_exact(sharded, serial_reference(spec))

    def test_single_shard_degenerate(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=10
        )
        sharded = CampaignRunner(workers=1, shards=1).run(spec)
        assert_bit_exact(sharded, serial_reference(spec))

    def test_sampled_fault_list_with_empty_windows(self):
        """A sparse sample leaves some cycle windows empty; merge order
        must still match the serial sampled list."""
        spec = CampaignSpec(
            circuit="b01",
            technique="state_scan",
            num_cycles=30,
            sample=7,
            seed=5,
        )
        sharded = CampaignRunner(workers=1, shards=10).run(spec)
        assert_bit_exact(sharded, serial_reference(spec))
        assert sharded.num_faults == 7

    def test_scan_chains_accounting_through_runner(self):
        """scan_chains > 1 divides state-scan's per-fault scan-in cost;
        the sharded path must account it identically."""
        single = CampaignSpec(
            circuit="b04", technique="state_scan", num_cycles=15
        )
        quad = CampaignSpec(
            circuit="b04", technique="state_scan", num_cycles=15,
            scan_chains=4,
        )
        runner = CampaignRunner(workers=1, shards=4)
        sharded_single = runner.run(single)
        sharded_quad = runner.run(quad)
        assert_bit_exact(sharded_single, serial_reference(single))
        assert_bit_exact(sharded_quad, serial_reference(quad))
        faults = sharded_quad.num_faults
        # 66 flops -> 66 cycles scan-in single-chain, 17 with 4 chains
        assert sharded_single.breakdown.setup == faults * (66 + 1)
        assert sharded_quad.breakdown.setup == faults * (17 + 1)
        assert sharded_single.breakdown.run == sharded_quad.breakdown.run

    def test_engines_agree_through_runner(self):
        spec_fused = CampaignSpec(
            circuit="b06", technique="mask_scan", num_cycles=14, engine="fused"
        )
        spec_numpy = CampaignSpec(
            circuit="b06", technique="mask_scan", num_cycles=14, engine="numpy"
        )
        runner = CampaignRunner(workers=1, shards=3)
        assert (
            runner.grade(spec_fused).fail_cycles
            == runner.grade(spec_numpy).fail_cycles
        )

    def test_board_override(self):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=10
        )
        result = CampaignRunner(workers=1).run(spec)
        assert result.timing.board is RC1000


class TestResume:
    def _graded_store(self, tmp_path, spec, shards=4):
        runner = CampaignRunner(
            workers=1, shards=shards, store_root=str(tmp_path)
        )
        result = runner.run(spec)
        store_dir = tmp_path / spec.campaign_id
        assert (store_dir / "shards.jsonl").exists()
        return runner, result

    def test_resume_after_kill_regrades_only_missing_shards(
        self, tmp_path, monkeypatch
    ):
        """Drop one shard record and truncate the tail (what a SIGKILL
        mid-append leaves behind); the rerun grades exactly the missing
        shard and the merged campaign stays bit-exact."""
        spec = CampaignSpec(
            circuit="b04", technique="time_multiplexed", num_cycles=20, seed=4
        )
        _, full = self._graded_store(tmp_path, spec)

        shards_file = tmp_path / spec.campaign_id / "shards.jsonl"
        lines = shards_file.read_text().strip().split("\n")
        assert len(lines) == 4
        # lose the last complete record and leave a truncated write
        shards_file.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:30])

        graded_windows = []
        original = worker.grade_window

        def counting(spec_dict, index, start, end):
            graded_windows.append(index)
            return original(spec_dict, index, start, end)

        monkeypatch.setattr(worker, "grade_window", counting)
        runner = CampaignRunner(
            workers=1, shards=4, store_root=str(tmp_path)
        )
        resumed = runner.run(spec)
        assert len(graded_windows) == 1  # only the lost shard
        assert_bit_exact(resumed, full)
        assert_bit_exact(resumed, serial_reference(spec))

    def test_completed_store_runs_without_grading(
        self, tmp_path, monkeypatch
    ):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=12
        )
        _, full = self._graded_store(tmp_path, spec)

        def explode(*args, **kwargs):
            raise AssertionError("grade_window called on a complete store")

        monkeypatch.setattr(worker, "grade_window", explode)
        runner = CampaignRunner(workers=1, shards=4, store_root=str(tmp_path))
        assert_bit_exact(runner.run(spec), full)

    def test_no_resume_regrades_everything(self, tmp_path, monkeypatch):
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=12
        )
        self._graded_store(tmp_path, spec)
        graded_windows = []
        original = worker.grade_window

        def counting(spec_dict, index, start, end):
            graded_windows.append(index)
            return original(spec_dict, index, start, end)

        monkeypatch.setattr(worker, "grade_window", counting)
        runner = CampaignRunner(
            workers=1, shards=4, store_root=str(tmp_path), resume=False
        )
        runner.run(spec)
        assert sorted(graded_windows) == [0, 1, 2, 3]

    def test_changed_shard_plan_adopts_stored_plan(
        self, tmp_path, monkeypatch
    ):
        """Resuming with a different worker/shard count must not throw
        away completed grading: the store's plan wins and nothing is
        regraded."""
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=12
        )
        _, full = self._graded_store(tmp_path, spec, shards=4)

        def explode(*args, **kwargs):
            raise AssertionError("regraded despite a complete store")

        monkeypatch.setattr(worker, "grade_window", explode)
        resumed = CampaignRunner(
            workers=2, shards=2, store_root=str(tmp_path)
        ).run(spec)
        assert_bit_exact(resumed, full)


class TestSweep:
    def test_techniques_share_one_grading(self, monkeypatch):
        spec_count = []
        original = worker.grade_window

        def counting(spec_dict, index, start, end):
            spec_count.append(index)
            return original(spec_dict, index, start, end)

        monkeypatch.setattr(worker, "grade_window", counting)
        specs = CampaignSpec.matrix(
            circuits=["b06"], num_cycles=16, seed=9
        )
        assert len(specs) == 3
        runner = CampaignRunner(workers=1, shards=4)
        results = runner.sweep(specs)
        assert len(spec_count) == 4  # one grading pass, not three
        for spec, result in zip(specs, results):
            assert_bit_exact(result, serial_reference(spec))

    def test_sweep_matches_table2(self):
        """The acceptance path: a sharded multi-process sweep reproduces
        the serial Table-2 machinery bit-exactly."""
        specs = CampaignSpec.matrix(circuits=["b09"], num_cycles=24, seed=1)
        results = CampaignRunner(workers=2, shards=4).sweep(specs)
        for spec, result in zip(specs, results):
            assert_bit_exact(result, serial_reference(spec))
