"""Unit tests for the fluent netlist builder."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.sim.cycle import CycleSimulator
from repro.sim.vectors import Testbench


class TestPorts:
    def test_input_bus(self):
        b = NetlistBuilder("t")
        nets = b.inputs("x", 4)
        assert nets == ["x[0]", "x[1]", "x[2]", "x[3]"]

    def test_output_net_buffers_when_renamed(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        b.output_net("y", a)
        n = b.build()
        assert "y" in n.outputs
        assert n.driver_of("y").gate_type == "buf"


class TestGateHelpers:
    def test_half_adder_truth(self):
        b = NetlistBuilder("ha")
        x, y = b.input("x"), b.input("y")
        b.output_net("s", b.xor_(x, y))
        b.output_net("c", b.and_(x, y))
        n = b.build()
        sim = CycleSimulator(n)
        for word in range(4):
            out = sim.step(word)
            x_v, y_v = word & 1, (word >> 1) & 1
            assert out & 1 == x_v ^ y_v
            assert (out >> 1) & 1 == x_v & y_v

    def test_single_input_nary_passthrough(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        assert b.and_(a) == a
        assert b.or_(a) == a

    def test_empty_nary_rejected(self):
        b = NetlistBuilder("t")
        with pytest.raises(NetlistError):
            b.and_()

    def test_mux_semantics(self):
        b = NetlistBuilder("m")
        s, d0, d1 = b.input("s"), b.input("d0"), b.input("d1")
        b.output_net("y", b.mux(s, d0, d1))
        sim = CycleSimulator(b.build())
        # s=1, d1=1, d0=0 -> 1
        assert sim.step(0b101) == 1
        # s=0, d0=1 -> 1
        assert sim.step(0b010) == 1
        # s=1, d1=0, d0=1 -> 0
        assert sim.step(0b011) == 0


class TestReductions:
    @pytest.mark.parametrize("width", [1, 2, 4, 5, 16, 17])
    def test_or_reduce(self, width):
        b = NetlistBuilder("r")
        bus = b.inputs("x", width)
        b.output_net("any", b.or_reduce(bus))
        sim = CycleSimulator(b.build())
        assert sim.step(0) == 0
        assert sim.step(1 << (width - 1)) == 1
        assert sim.step((1 << width) - 1) == 1

    @pytest.mark.parametrize("width", [2, 4, 9])
    def test_and_reduce(self, width):
        b = NetlistBuilder("r")
        bus = b.inputs("x", width)
        b.output_net("all", b.and_reduce(bus))
        sim = CycleSimulator(b.build())
        assert sim.step((1 << width) - 1) == 1
        assert sim.step((1 << width) - 2) == 0

    def test_reduce_tree_bounds_fanin(self):
        b = NetlistBuilder("r")
        bus = b.inputs("x", 20)
        b.output_net("y", b.reduce_tree("or", bus, arity=3))
        n = b.build()
        assert all(len(g.inputs) <= 3 for g in n.gates.values())

    def test_equal_comparator(self):
        b = NetlistBuilder("eq")
        xs = b.inputs("x", 3)
        ys = b.inputs("y", 3)
        b.output_net("eq", b.equal(xs, ys))
        sim = CycleSimulator(b.build())
        # x=5, y=5 packed as x | y<<3
        assert sim.step(5 | (5 << 3)) == 1
        assert sim.step(5 | (4 << 3)) == 0

    def test_equal_width_mismatch_rejected(self):
        b = NetlistBuilder("eq")
        xs = b.inputs("x", 3)
        ys = b.inputs("y", 2)
        with pytest.raises(NetlistError):
            b.equal(xs, ys)


class TestSequential:
    def test_register_inits(self):
        b = NetlistBuilder("reg")
        ins = b.inputs("d", 4)
        qs = b.register(ins, "r", init=0b1010)
        b.outputs("q", qs)
        n = b.build()
        sim = CycleSimulator(n)
        assert sim.get_state() == 0b1010

    def test_dff_names_deterministic(self):
        b = NetlistBuilder("reg")
        ins = b.inputs("d", 2)
        b.register(ins, "r")
        b.outputs("q", [f"r[{i}]" for i in range(2)])
        n = b.build()
        assert n.ff_names() == ["ff$r[0]", "ff$r[1]"]
