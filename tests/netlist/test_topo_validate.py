"""Unit tests for levelization and validation."""

import pytest

from repro.errors import ValidationError
from repro.netlist.netlist import Netlist
from repro.netlist.topo import combinational_levels, levelize
from repro.netlist.validate import validate_netlist


def chain(depth: int) -> Netlist:
    n = Netlist("chain")
    n.add_input("a")
    previous = "a"
    for index in range(depth):
        out = f"n{index}"
        n.add_gate(f"g{index}", "inv", [previous], out)
        previous = out
    n.add_output(previous)
    return n


class TestLevelize:
    def test_respects_dependencies(self):
        n = chain(5)
        order = [g.name for g in levelize(n)]
        assert order == [f"g{i}" for i in range(5)]

    def test_flop_breaks_cycles(self):
        n = Netlist("loop_ok")
        n.add_gate("g", "inv", ["q"], "d")
        n.add_dff("r", "d", "q")
        n.add_output("q")
        assert [g.name for g in levelize(n)] == ["g"]
        validate_netlist(n)

    def test_combinational_loop_detected(self):
        n = Netlist("loop_bad")
        n.add_gate("g1", "inv", ["b"], "a")
        n.add_gate("g2", "inv", ["a"], "b")
        n.add_output("a")
        with pytest.raises(ValidationError, match="loop"):
            levelize(n)

    def test_levels_monotone(self):
        n = chain(7)
        levels = combinational_levels(n)
        assert levels == {f"g{i}": i for i in range(7)}

    def test_diamond_level_is_longest_path(self):
        n = Netlist("diamond")
        n.add_input("a")
        n.add_gate("l1", "inv", ["a"], "x")
        n.add_gate("l2", "inv", ["x"], "y")
        n.add_gate("join", "and", ["a", "y"], "z")
        n.add_output("z")
        assert combinational_levels(n)["join"] == 2


class TestValidate:
    def test_valid_passes(self):
        validate_netlist(chain(3))

    def test_undriven_gate_input(self):
        n = Netlist("bad")
        n.add_gate("g", "inv", ["ghost"], "y")
        n.add_output("y")
        with pytest.raises(ValidationError, match="undriven"):
            validate_netlist(n)

    def test_undriven_flop_d(self):
        n = Netlist("bad")
        n.add_dff("r", "ghost", "q")
        n.add_output("q")
        with pytest.raises(ValidationError, match="undriven"):
            validate_netlist(n)

    def test_undriven_output(self):
        n = Netlist("bad")
        n.add_input("a")
        n.add_output("nothing")
        with pytest.raises(ValidationError):
            validate_netlist(n)

    def test_dangling_net_flagged_unless_allowed(self):
        n = chain(2)
        n.add_gate("dead", "inv", ["a"], "unused")
        with pytest.raises(ValidationError, match="never used"):
            validate_netlist(n)
        validate_netlist(n, allow_dangling=True)

    def test_multiple_problems_reported_together(self):
        n = Netlist("bad")
        n.add_gate("g1", "inv", ["ghost1"], "y1")
        n.add_gate("g2", "inv", ["ghost2"], "y2")
        n.add_output("y1")
        n.add_output("y2")
        with pytest.raises(ValidationError, match="ghost1"):
            validate_netlist(n)
