"""Unit tests for netlist cleanup transforms."""

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.netlist.transform import (
    propagate_constants,
    remove_buffers,
    sweep_dead_logic,
)
from repro.netlist.validate import validate_netlist
from repro.sim.cycle import CycleSimulator
from repro.sim.vectors import random_testbench


def equivalent(a: Netlist, b: Netlist, cycles: int = 20, seed: int = 3) -> bool:
    """Random simulation equivalence over shared I/O."""
    bench = random_testbench(a, cycles, seed=seed)
    sim_a, sim_b = CycleSimulator(a), CycleSimulator(b)
    return all(sim_a.step(v) == sim_b.step(v) for v in bench.vectors)


class TestRemoveBuffers:
    def test_internal_buffers_removed(self):
        b = NetlistBuilder("bufs")
        a = b.input("a")
        x = b.buf(b.buf(b.buf(a)))
        b.output_net("y", b.inv(x))
        n = b.build()
        cleaned = remove_buffers(n)
        internal_bufs = [
            g for g in cleaned.gates.values()
            if g.gate_type == "buf" and g.output not in cleaned.outputs
        ]
        assert not internal_bufs
        assert equivalent(n, cleaned)

    def test_output_buffers_kept(self):
        b = NetlistBuilder("obuf")
        a = b.input("a")
        b.output_net("y", a)  # forces an output buffer
        n = b.build()
        cleaned = remove_buffers(n)
        assert "y" in cleaned.outputs
        validate_netlist(cleaned)


class TestPropagateConstants:
    def test_constant_cone_folds(self):
        b = NetlistBuilder("konst")
        a = b.input("a")
        one = b.const1()
        zero = b.const0()
        dead_and = b.and_(one, zero)       # always 0
        b.output_net("y", b.or_(a, dead_and))  # == a
        n = b.build()
        folded = propagate_constants(n)
        assert equivalent(n, folded)
        # the and gate must be gone
        assert not any(g.gate_type == "and" for g in folded.gates.values())

    def test_no_constants_is_identity(self):
        b = NetlistBuilder("plain")
        a, c = b.input("a"), b.input("c")
        b.output_net("y", b.xor_(a, c))
        n = b.build()
        folded = propagate_constants(n)
        assert equivalent(n, folded)

    def test_flops_never_folded(self):
        b = NetlistBuilder("seq")
        one = b.const1()
        q = b.dff(one, q="q", init=0, name="ff$q")
        b.output_net("y", q)
        b.input("dummy")
        n = b.build(allow_dangling=True)
        folded = propagate_constants(n)
        assert folded.num_ffs == 1  # flop survives: value differs at t=0


class TestSweepDeadLogic:
    def test_unreachable_gates_removed(self):
        b = NetlistBuilder("dead")
        a = b.input("a")
        b.inv(a)  # dangling
        b.output_net("y", a)
        n = b.build(allow_dangling=True)
        swept = sweep_dead_logic(n)
        assert swept.num_gates == 1  # only the output buffer survives
        validate_netlist(swept)

    def test_live_flop_cone_kept(self):
        b = NetlistBuilder("live")
        a = b.input("a")
        q = b.dff(b.xor_(a, "q"), q="q", init=0, name="ff$q")
        b.output_net("y", q)
        n = b.build()
        swept = sweep_dead_logic(n)
        assert swept.num_ffs == 1
        assert equivalent(n, swept)

    def test_dead_flop_removed(self):
        b = NetlistBuilder("deadff")
        a = b.input("a")
        b.dff(a, q="never_read", init=0, name="ff$dead")
        b.output_net("y", b.inv(a))
        n = b.build(allow_dangling=True)
        swept = sweep_dead_logic(n)
        assert swept.num_ffs == 0

    def test_inputs_always_preserved(self):
        b = NetlistBuilder("iface")
        b.input("used")
        b.input("unused")
        b.output_net("y", b.inv("used"))
        n = b.build(allow_dangling=True)
        swept = sweep_dead_logic(n)
        assert swept.inputs == ["used", "unused"]
