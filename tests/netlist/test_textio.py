"""Unit tests for .bnet serialisation."""

import pytest

from repro.errors import ParseError
from repro.logic.values import X
from repro.netlist.textio import dumps_netlist, loads_netlist
from tests.conftest import build_counter


class TestRoundtrip:
    def test_counter_roundtrip(self):
        original = build_counter(4)
        text = dumps_netlist(original)
        parsed = loads_netlist(text)
        assert parsed.name == original.name
        assert parsed.inputs == original.inputs
        assert parsed.outputs == original.outputs
        assert set(parsed.gates) == set(original.gates)
        assert set(parsed.dffs) == set(original.dffs)
        for name, gate in original.gates.items():
            assert parsed.gates[name].inputs == gate.inputs
            assert parsed.gates[name].gate_type == gate.gate_type

    def test_roundtrip_preserves_behaviour(self):
        from repro.sim.cycle import CycleSimulator

        original = build_counter(3)
        parsed = loads_netlist(dumps_netlist(original))
        sim_a, sim_b = CycleSimulator(original), CycleSimulator(parsed)
        for vector in [1, 1, 0, 1, 1, 1, 0]:
            assert sim_a.step(vector) == sim_b.step(vector)

    def test_x_init_roundtrip(self):
        text = (
            "circuit t\n"
            "input a\n"
            "output q\n"
            "dff r d=a q=q init=x\n"
        )
        parsed = loads_netlist(text)
        assert parsed.dffs["r"].init == X
        assert "init=x" in dumps_netlist(parsed)


class TestParsing:
    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# a comment\n\ncircuit c\n"
            "input a\n# another\noutput y\n"
            "gate g buf a -> y\n"
        )
        parsed = loads_netlist(text)
        assert parsed.num_gates == 1

    def test_missing_circuit_line(self):
        with pytest.raises(ParseError, match="circuit"):
            loads_netlist("input a\n")

    def test_duplicate_circuit_line(self):
        with pytest.raises(ParseError, match="duplicate"):
            loads_netlist("circuit a\ncircuit b\n")

    def test_gate_missing_arrow(self):
        with pytest.raises(ParseError, match="->"):
            loads_netlist("circuit c\ninput a\ngate g buf a y\n")

    def test_bad_dff_field(self):
        with pytest.raises(ParseError):
            loads_netlist("circuit c\ninput a\ndff r d=a\n")

    def test_bad_init_value(self):
        with pytest.raises(ParseError, match="init"):
            loads_netlist("circuit c\ninput a\ndff r d=a q=q init=7\n")

    def test_error_carries_line_number(self):
        try:
            loads_netlist("circuit c\ninput a\nfrobnicate\n")
        except ParseError as error:
            assert error.line == 3
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_empty_file_rejected(self):
        with pytest.raises(ParseError):
            loads_netlist("")

    def test_validation_can_be_skipped(self):
        text = "circuit c\ninput a\noutput ghost\n"
        with pytest.raises(ParseError):
            # output undriven -> validation failure is wrapped
            try:
                loads_netlist(text)
            except Exception as error:
                raise ParseError(str(error)) from error
        parsed = loads_netlist(text, validate=False)
        assert parsed.outputs == ["ghost"]


class TestFileIo:
    def test_file_roundtrip(self, tmp_path):
        from repro.netlist.textio import netlist_from_file, netlist_to_file

        original = build_counter(2)
        path = tmp_path / "counter.bnet"
        netlist_to_file(original, path)
        parsed = netlist_from_file(path)
        assert set(parsed.gates) == set(original.gates)
