"""Unit tests for the core netlist data structure."""

import pytest

from repro.errors import NetlistError
from repro.netlist.netlist import Dff, Gate, Netlist


def small_netlist():
    n = Netlist("small")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("g1", "and", ["a", "b"], "ab")
    n.add_dff("r1", "ab", "q", init=0)
    n.add_gate("g2", "xor", ["q", "a"], "y")
    n.add_output("y")
    return n


class TestConstruction:
    def test_counts(self):
        n = small_netlist()
        assert n.num_gates == 2
        assert n.num_ffs == 1
        assert len(n.inputs) == 2
        assert len(n.outputs) == 1

    def test_double_driver_rejected(self):
        n = small_netlist()
        with pytest.raises(NetlistError):
            n.add_gate("g3", "or", ["a", "b"], "ab")

    def test_duplicate_instance_name_rejected(self):
        n = small_netlist()
        with pytest.raises(NetlistError):
            n.add_gate("g1", "or", ["a", "b"], "zz")
        with pytest.raises(NetlistError):
            n.add_dff("g1", "a", "zz2")

    def test_duplicate_output_rejected(self):
        n = small_netlist()
        with pytest.raises(NetlistError):
            n.add_output("y")

    def test_duplicate_input_rejected(self):
        n = small_netlist()
        with pytest.raises(NetlistError):
            n.add_input("a")

    def test_gate_arity_checked_at_construction(self):
        with pytest.raises(NetlistError):
            Gate("bad", "inv", ("a", "b"), "o")

    def test_unknown_gate_type_rejected(self):
        with pytest.raises(NetlistError):
            Gate("bad", "flurb", ("a",), "o")

    def test_dff_init_validated(self):
        with pytest.raises(NetlistError):
            Dff("bad", "d", "q", init=3)

    def test_fresh_net_never_collides(self):
        n = small_netlist()
        seen = set(n.nets())
        for _ in range(100):
            net = n.fresh_net()
            assert net not in seen
            n.add_gate(f"buf_{net}", "buf", ["a"], net)
            seen.add(net)


class TestQueries:
    def test_driver_of(self):
        n = small_netlist()
        assert n.driver_of("a") == "input"
        assert isinstance(n.driver_of("ab"), Gate)
        assert isinstance(n.driver_of("q"), Dff)

    def test_driver_of_undriven_raises(self):
        n = small_netlist()
        with pytest.raises(NetlistError):
            n.driver_of("phantom")

    def test_fanout_map(self):
        n = small_netlist()
        fanout = n.fanout_map()
        # net "a" feeds g1 and g2
        assert {g.name for g in fanout["a"]} == {"g1", "g2"}
        # "ab" feeds the flop
        assert [d.name for d in fanout["ab"]] == ["r1"]

    def test_transitive_fanin_crosses_flops(self):
        n = small_netlist()
        cone = n.transitive_fanin(["y"])
        assert {"y", "q", "ab", "a", "b"} <= cone

    def test_removal_releases_net(self):
        n = small_netlist()
        n.remove_gate("g2")
        assert not n.is_driven("y")
        n.add_gate("g2b", "or", ["q", "b"], "y")

    def test_remove_missing_raises(self):
        n = small_netlist()
        with pytest.raises(NetlistError):
            n.remove_gate("nope")
        with pytest.raises(NetlistError):
            n.remove_dff("nope")


class TestClone:
    def test_clone_is_deep_equal(self):
        n = small_netlist()
        c = n.clone()
        assert c.inputs == n.inputs
        assert c.outputs == n.outputs
        assert set(c.gates) == set(n.gates)
        assert set(c.dffs) == set(n.dffs)

    def test_clone_is_independent(self):
        n = small_netlist()
        c = n.clone()
        c.add_gate("extra", "inv", ["a"], c.fresh_net())
        assert "extra" not in n.gates

    def test_ff_names_order_stable(self):
        n = small_netlist()
        n.add_dff("r2", "a", "q2")
        assert n.ff_names() == ["r1", "r2"]
