"""Tests for the priority-cuts LUT mapper."""

import pytest

from repro.errors import SynthesisError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.synth.lutmap import decompose_wide_gates, map_to_luts
from tests.conftest import build_counter


class TestBasicMapping:
    def test_single_gate_is_one_lut(self):
        b = NetlistBuilder("one")
        x, y = b.input("x"), b.input("y")
        b.output_net("z", b.and_(x, y))
        mapping = map_to_luts(b.build())
        assert mapping.num_luts == 1
        assert mapping.depth == 1

    def test_chain_folds_into_one_lut(self):
        # inv(inv(inv(x))) depends on 1 input -> one 4-LUT
        b = NetlistBuilder("chain")
        x = b.input("x")
        b.output_net("y", b.inv(b.inv(b.inv(x))))
        mapping = map_to_luts(b.build())
        assert mapping.num_luts == 1

    def test_wide_cone_splits(self):
        # 8-input AND tree cannot fit one 4-LUT
        b = NetlistBuilder("wide")
        bus = b.inputs("x", 8)
        b.output_net("y", b.reduce_tree("and", bus, arity=2))
        mapping = map_to_luts(b.build(), k=4)
        assert mapping.num_luts >= 2
        for cut in mapping.luts.values():
            assert len(cut) <= 4

    def test_k2_mapping(self):
        b = NetlistBuilder("k2")
        bus = b.inputs("x", 4)
        b.output_net("y", b.reduce_tree("xor", bus, arity=2))
        mapping = map_to_luts(b.build(), k=2)
        assert mapping.num_luts == 3  # binary tree of 2-LUTs
        assert all(len(cut) <= 2 for cut in mapping.luts.values())

    def test_k_must_be_at_least_two(self, counter):
        with pytest.raises(SynthesisError):
            map_to_luts(counter, k=1)

    def test_flop_boundaries_are_leaves(self, counter):
        mapping = map_to_luts(counter)
        q_nets = {dff.q for dff in counter.dffs.values()}
        # no LUT root is a flop output, but flop outputs may be cut leaves
        assert not (set(mapping.luts) & q_nets)

    def test_every_root_covered(self, counter):
        mapping = map_to_luts(counter)
        gate_outputs = {g.output for g in counter.gates.values()}
        for dff in counter.dffs.values():
            if dff.d in gate_outputs:
                assert dff.d in mapping.luts
        for net in counter.outputs:
            if net in gate_outputs:
                assert net in mapping.luts

    def test_cut_leaves_are_real_nets(self, counter):
        mapping = map_to_luts(counter)
        known = counter.all_referenced_nets()
        for root, cut in mapping.luts.items():
            assert root in known
            assert set(cut) <= known

    def test_constants_cost_no_lut(self):
        b = NetlistBuilder("konst")
        a = b.input("a")
        b.output_net("y", b.and_(a, b.const1()))
        mapping = map_to_luts(b.build())
        # the and gate absorbs the constant: exactly one LUT
        assert mapping.num_luts == 1


class TestDecomposeWideGates:
    def test_narrow_untouched(self, counter):
        assert decompose_wide_gates(counter, 4) is counter

    def test_wide_and_split(self):
        n = Netlist("wide")
        for index in range(6):
            n.add_input(f"i{index}")
        n.add_gate("big", "and", [f"i{i}" for i in range(6)], "y")
        n.add_output("y")
        result = decompose_wide_gates(n, 4)
        assert all(len(g.inputs) <= 4 for g in result.gates.values())
        # behaviour preserved
        from repro.sim.cycle import CycleSimulator

        sim_a, sim_b = CycleSimulator(n), CycleSimulator(result)
        for word in (0, 63, 62, 31, 55):
            assert sim_a.step(word) == sim_b.step(word)

    def test_wide_nand_preserves_inversion(self):
        n = Netlist("widenand")
        for index in range(7):
            n.add_input(f"i{index}")
        n.add_gate("big", "nand", [f"i{i}" for i in range(7)], "y")
        n.add_output("y")
        result = decompose_wide_gates(n, 3)
        from repro.sim.cycle import CycleSimulator

        sim_a, sim_b = CycleSimulator(n), CycleSimulator(result)
        for word in (0, 127, 126, 64):
            assert sim_a.step(word) == sim_b.step(word)

    def test_undedecomposable_wide_gate_rejected(self):
        n = Netlist("widemux")
        # fabricate an illegally wide buf by bypassing Gate validation is
        # not possible; instead check the error path via a wide xor with
        # k below minimum tree arity
        for index in range(5):
            n.add_input(f"i{index}")
        n.add_gate("big", "xor", [f"i{i}" for i in range(5)], "y")
        n.add_output("y")
        result = decompose_wide_gates(n, 2)
        assert all(len(g.inputs) <= 2 for g in result.gates.values())


class TestAreaSanity:
    def test_counter_luts_reasonable(self, counter):
        mapping = map_to_luts(counter)
        # 4-bit counter: a handful of LUTs, never more than gate count
        assert 0 < mapping.num_luts <= counter.num_gates

    def test_mapping_deterministic(self, counter):
        a = map_to_luts(counter)
        b = map_to_luts(counter)
        assert a.luts == b.luts
