"""Area reports and overhead rendering, including the degenerate
zero-resource baseline (overhead undefined, rendered ``n/a``)."""

from repro.synth.area import AreaReport, _pct


class TestPct:
    def test_normal_overhead(self):
        assert _pct(150, 100) == 50.0
        assert _pct(100, 100) == 0.0
        assert _pct(50, 100) == -50.0

    def test_zero_baseline_is_undefined(self):
        # growing from zero has no finite ratio — not 0%
        assert _pct(7, 0) is None

    def test_zero_over_zero_is_true_zero(self):
        assert _pct(0, 0) == 0.0


class TestOverheadRendering:
    def test_cells_with_defined_overhead(self):
        report = AreaReport(name="h", luts=150, ffs=12)
        overhead = report.overhead_vs(AreaReport(name="p", luts=100, ffs=4))
        assert overhead.lut_overhead_pct == 50.0
        assert overhead.ff_overhead_pct == 200.0
        assert overhead.lut_cell() == "150 (50%)"
        assert overhead.ff_cell() == "12 (200%)"

    def test_cells_with_zero_baseline_render_na(self):
        # a baseline with no flip-flops: the hardened version's FF
        # "overhead" is undefined and must not print as (0%)
        report = AreaReport(name="h", luts=20, ffs=3)
        overhead = report.overhead_vs(AreaReport(name="p", luts=0, ffs=0))
        assert overhead.lut_overhead_pct is None
        assert overhead.ff_overhead_pct is None
        assert overhead.lut_cell() == "20 (n/a)"
        assert overhead.ff_cell() == "3 (n/a)"

    def test_zero_over_zero_renders_zero_pct(self):
        report = AreaReport(name="h", luts=10, ffs=0)
        overhead = report.overhead_vs(AreaReport(name="p", luts=10, ffs=0))
        assert overhead.ff_overhead_pct == 0.0
        assert overhead.ff_cell() == "0 (0%)"
