"""Fault-semantics contracts of the hardening schemes.

The claims the hardness report rests on, proved at the single-fault
level: TMR masks any single upset (and scrubs it — silent), double
upsets inside one voter group defeat it, DWC's flag raises on exactly
the cycles original and shadow state diverge, and parity detects odd
upsets while being blind to even ones at the injection cycle.
"""

import pytest

from repro.faults.classify import FaultClass
from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.faults.models import MbuFault
from repro.hardening import harden_dwc, harden_parity, harden_tmr
from repro.sim.cycle import CycleSimulator, run_golden
from repro.sim.parallel import grade_faults
from repro.sim.vectors import random_testbench

from tests.hardening.util import WIDTH, build_datapath

CYCLES = 32


def _bench(netlist, seed=11):
    return random_testbench(netlist, CYCLES, seed=seed)


class TestTmrVoter:
    def test_single_upset_in_any_copy_is_silent(self):
        """The complete single-fault set on the TMR circuit is masked:
        no failures, and every upset vanishes (scrubbed next load)."""
        hardened = harden_tmr(build_datapath())
        result = grade_faults(
            hardened, _bench(hardened), exhaustive_fault_list(hardened, CYCLES)
        )
        counts = result.to_dictionary().counts()
        assert counts[FaultClass.FAILURE] == 0
        assert counts[FaultClass.LATENT] == 0
        assert counts[FaultClass.SILENT] == result.num_faults

    def test_single_upset_masked_at_injection_cycle(self):
        """Output word at the injection cycle matches golden exactly."""
        hardened = harden_tmr(build_datapath())
        bench = _bench(hardened)
        for copy in range(3):
            fault = SeuFault(cycle=9, flop_index=copy)  # copies of ff0
            result = grade_faults(hardened, bench, [fault])
            assert result.fail_cycles[0] == -1
            assert result.vanish_cycles[0] == 9  # scrubbed same cycle

    def test_double_upset_in_distinct_copies_is_not_masked(self):
        """Two corrupted copies out-vote the clean one: the wrong value
        reaches the outputs the same cycle."""
        hardened = harden_tmr(build_datapath())
        bench = _bench(hardened)
        # copies of one flop are adjacent in flop order: 3i, 3i+1, 3i+2
        fault = MbuFault(cycle=9, flop_index=0, width=2)
        result = grade_faults(hardened, bench, [fault])
        assert result.fail_cycles[0] == 9

    def test_double_upset_across_voter_groups_is_masked(self):
        """Adjacent flops in *different* voter groups each keep their
        majority: scan-order adjacency is not voter-group adjacency."""
        hardened = harden_tmr(build_datapath())
        bench = _bench(hardened)
        # flop 2 (copy2 of ff0) and flop 3 (copy0 of ff1)
        fault = MbuFault(cycle=9, flop_index=2, width=2)
        result = grade_faults(hardened, bench, [fault])
        assert result.fail_cycles[0] == -1
        assert result.vanish_cycles[0] == 9

    def test_unvoted_feedback_masks_but_does_not_scrub(self):
        """Without voted feedback the upset persists in its copy's
        private loop: never a failure, but latent instead of silent when
        the corrupted loop state survives to the end of the bench."""
        hardened = harden_tmr(build_datapath(), voted_feedback=False)
        result = grade_faults(
            hardened, _bench(hardened), exhaustive_fault_list(hardened, CYCLES)
        )
        counts = result.to_dictionary().counts()
        assert counts[FaultClass.FAILURE] == 0
        assert counts[FaultClass.LATENT] > 0


class TestDwcFlag:
    def _divergence_flags(self, hardened, bench, fault_flop, inject_cycle):
        """Simulate one upset, returning per-cycle (flag, states_differ)."""
        golden = run_golden(hardened, bench)
        simulator = CycleSimulator(hardened)
        simulator.set_state(golden.states[inject_cycle])
        simulator.flip_flop_bit(fault_flop)
        flag_bit = len(hardened.outputs) - 1
        observations = []
        num_flops = hardened.num_ffs
        originals = range(WIDTH)  # original flops come first
        shadows = range(num_flops - WIDTH, num_flops)
        for cycle in range(inject_cycle, bench.num_cycles):
            state = simulator.get_state()
            diverged = any(
                (state >> original) & 1 != (state >> shadow) & 1
                for original, shadow in zip(originals, shadows)
            )
            output = simulator.step(bench.vectors[cycle])
            observations.append(((output >> flag_bit) & 1, int(diverged)))
        return observations

    def test_flag_raises_on_exactly_the_divergent_cycles(self):
        hardened = harden_dwc(build_datapath())
        bench = _bench(hardened)
        for fault_flop in (0, WIDTH):  # an original and a shadow flop
            observations = self._divergence_flags(hardened, bench, fault_flop, 7)
            for flag, diverged in observations:
                assert flag == diverged
            # a transient upset diverges the pair for exactly one cycle:
            # both copies reload from the shared d net at the next edge
            assert [flag for flag, _ in observations] == [1] + [0] * (
                len(observations) - 1
            )

    def test_every_single_upset_is_detected(self):
        """Upsets on any flop (original or shadow) raise the flag at the
        injection cycle, so the whole population classifies FAILURE."""
        hardened = harden_dwc(build_datapath())
        result = grade_faults(
            hardened, _bench(hardened), exhaustive_fault_list(hardened, CYCLES)
        )
        assert all(cycle != -1 for cycle in result.fail_cycles)
        # detection is immediate: fail cycle == injection cycle
        for fault, fail_cycle in zip(result.faults, result.fail_cycles):
            assert fail_cycle == fault.cycle


class TestParityFlag:
    def test_odd_upset_detected_at_injection_cycle(self):
        hardened = harden_parity(build_datapath())
        bench = _bench(hardened)
        flag_bit = len(hardened.outputs) - 1
        golden = run_golden(hardened, bench)
        for flop in range(hardened.num_ffs):  # includes the parity flop
            simulator = CycleSimulator(hardened)
            simulator.set_state(golden.states[5])
            simulator.flip_flop_bit(flop)
            output = simulator.step(bench.vectors[5])
            assert (output >> flag_bit) & 1 == 1

    def test_even_upset_is_missed_at_injection_cycle(self):
        """Two flipped bits cancel in the parity sum — the blind spot."""
        hardened = harden_parity(build_datapath())
        bench = _bench(hardened)
        flag_bit = len(hardened.outputs) - 1
        golden = run_golden(hardened, bench)
        simulator = CycleSimulator(hardened)
        simulator.set_state(golden.states[5])
        simulator.flip_flop_bit(0)
        simulator.flip_flop_bit(1)
        output = simulator.step(bench.vectors[5])
        assert (output >> flag_bit) & 1 == 0


@pytest.mark.parametrize("scheme_transform", (harden_dwc, harden_parity))
def test_detection_schemes_do_not_mask(scheme_transform):
    """DWC/parity leave the functional outputs unprotected: faults that
    failed on the plain circuit still fail on the hardened one."""
    plain = build_datapath()
    hardened = scheme_transform(plain)
    bench = _bench(plain)
    faults = exhaustive_fault_list(plain, CYCLES)  # original flops only
    plain_result = grade_faults(plain, bench, faults)
    hardened_result = grade_faults(hardened, _bench(hardened), faults)
    for index, plain_fail in enumerate(plain_result.fail_cycles):
        if plain_fail != -1:
            assert hardened_result.fail_cycles[index] != -1
