"""Structural contracts of the hardening transforms.

Every scheme must preserve the circuit interface (inputs verbatim,
original outputs prefix-stable), produce strictly valid netlists, honour
selective flop subsets, and leave the fault-free behaviour untouched.
"""

import pytest

from repro.circuits.registry import build_circuit
from repro.emu.system import AutonomousEmulator
from repro.errors import HardeningError
from repro.hardening import (
    apply_hardening,
    available_schemes,
    harden_dwc,
    harden_parity,
    harden_tmr,
)
from repro.netlist.textio import dumps_netlist, loads_netlist
from repro.netlist.validate import validate_netlist
from repro.sim.cycle import run_golden
from repro.sim.vectors import random_testbench
from repro.synth.area import area_of

from tests.hardening.util import WIDTH, build_datapath

ALL_SCHEMES = ("tmr", "tmr_unvoted", "dwc", "parity")


class TestInterfaceContract:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_inputs_and_output_prefix_preserved(self, scheme):
        plain = build_datapath()
        hardened = apply_hardening(scheme, plain)
        assert hardened.inputs == plain.inputs
        assert hardened.outputs[: len(plain.outputs)] == plain.outputs
        validate_netlist(hardened)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_golden_outputs_unchanged(self, scheme):
        """Fault-free, the hardened circuit computes the same function."""
        plain = build_datapath()
        hardened = apply_hardening(scheme, plain)
        bench = random_testbench(plain, 40, seed=7)
        plain_golden = run_golden(plain, bench)
        hardened_golden = run_golden(hardened, bench)
        original = (1 << len(plain.outputs)) - 1
        for plain_word, hardened_word in zip(
            plain_golden.outputs, hardened_golden.outputs
        ):
            assert hardened_word & original == plain_word

    @pytest.mark.parametrize("scheme", ("dwc", "parity"))
    def test_flag_low_in_golden_run(self, scheme):
        """The checker flag never raises without a fault."""
        plain = build_datapath()
        hardened = apply_hardening(scheme, plain)
        flag_bit = 1 << (len(hardened.outputs) - 1)
        bench = random_testbench(plain, 40, seed=7)
        for word in run_golden(hardened, bench).outputs:
            assert word & flag_bit == 0

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_deterministic(self, scheme):
        a = dumps_netlist(apply_hardening(scheme, build_datapath()))
        b = dumps_netlist(apply_hardening(scheme, build_datapath()))
        assert a == b

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_bnet_round_trip(self, scheme):
        hardened = apply_hardening(scheme, build_datapath())
        reloaded = loads_netlist(dumps_netlist(hardened))
        assert reloaded.ff_names() == hardened.ff_names()
        assert reloaded.outputs == hardened.outputs


class TestStructure:
    def test_tmr_triples_flops(self):
        plain = build_datapath()
        hardened = harden_tmr(plain)
        assert hardened.num_ffs == 3 * plain.num_ffs
        assert hardened.name == "datapath~tmr"
        # voters: 3 ANDs + 1 OR per protected flop
        assert hardened.num_gates == plain.num_gates + 4 * plain.num_ffs

    def test_tmr_unvoted_clones_feedback_cones(self):
        plain = build_datapath()
        hardened = harden_tmr(plain, voted_feedback=False)
        assert hardened.num_ffs == 3 * plain.num_ffs
        # each copy owns a private clone of every d-cone xor
        assert hardened.num_gates > plain.num_gates + 4 * plain.num_ffs
        validate_netlist(hardened)

    def test_dwc_doubles_flops_and_appends_flag(self):
        plain = build_datapath()
        hardened = harden_dwc(plain)
        assert hardened.num_ffs == 2 * plain.num_ffs
        assert hardened.outputs[-1] == "dwc_err"

    def test_parity_adds_one_flop_and_flag(self):
        plain = build_datapath()
        hardened = harden_parity(plain)
        assert hardened.num_ffs == plain.num_ffs + 1
        assert hardened.outputs[-1] == "parity_err"

    def test_flag_name_collision_is_resolved(self):
        plain = build_datapath()
        hardened = harden_dwc(plain, flag_output="out[0]")
        assert hardened.outputs[-1] != "out[0]"
        assert hardened.outputs[-1].startswith("out[0]")
        validate_netlist(hardened)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_area_overhead_is_positive(self, scheme):
        plain = build_circuit("b02")
        hardened = apply_hardening(scheme, plain)
        overhead = area_of(hardened).overhead_vs(area_of(plain))
        assert overhead.lut_overhead_pct > 0
        assert overhead.ff_overhead_pct > 0


class TestSelectiveHardening:
    def test_subset_only_touches_named_flops(self):
        plain = build_datapath()
        hardened = harden_tmr(plain, flops=["ff0", "ff2"])
        assert hardened.num_ffs == plain.num_ffs + 2 * 2
        assert "ff1" in hardened.dffs
        assert "ff0" not in hardened.dffs
        assert "ff0~tmr0" in hardened.dffs
        validate_netlist(hardened)

    def test_subset_order_and_duplicates_normalised(self):
        plain = build_datapath()
        a = dumps_netlist(harden_dwc(plain, flops=["ff1", "ff1", "ff0"]))
        b = dumps_netlist(harden_dwc(plain, flops=["ff1", "ff0"]))
        assert a == b

    def test_unknown_flop_is_named(self):
        with pytest.raises(HardeningError, match="nonexistent"):
            harden_tmr(build_datapath(), flops=["nonexistent"])

    def test_empty_subset_rejected(self):
        with pytest.raises(HardeningError, match="at least one"):
            harden_parity(build_datapath(), flops=[])

    def test_flopless_circuit_rejected(self):
        with pytest.raises(HardeningError, match="no flip-flops"):
            apply_hardening("tmr", build_circuit("corpus:c17"))

    def test_name_collision_with_generated_names_is_clean(self):
        """Imported netlists may legally contain '~' in their names; a
        collision with a generated copy name must surface as a
        HardeningError, not a raw duplicate-name crash."""
        from repro.netlist.netlist import Netlist

        netlist = Netlist("hostile")
        netlist.add_input("a")
        netlist.add_dff("ff", "a", "q")
        netlist.add_dff("ff~dwc", "a", "q~dwc")  # occupies the shadow name
        netlist.add_output("q")
        netlist.add_output("q~dwc")
        with pytest.raises(HardeningError, match="cannot apply 'dwc'"):
            apply_hardening("dwc", netlist, flops=["ff"])

    def test_double_hardening_composes(self):
        """Schemes stack when names do not collide: DWC inside TMR."""
        layered = apply_hardening("tmr", apply_hardening("dwc", build_datapath()))
        assert layered.num_ffs == 3 * (2 * WIDTH)
        validate_netlist(layered)


class TestEmulatorCompatibility:
    """Hardened netlists instrument and synthesize like any circuit:
    voters are plain gates, triplicated flops grow the scan chain."""

    @pytest.mark.parametrize("technique", ("mask_scan", "time_multiplexed"))
    def test_instrument_and_synthesize(self, technique):
        plain = build_circuit("b02")
        hardened = apply_hardening("tmr", plain)
        cycles, faults = 32, 32 * hardened.num_ffs
        plain_summary = AutonomousEmulator(
            plain, technique, campaign_cycles=cycles, campaign_faults=faults
        ).synthesize(cycles, faults)
        hardened_summary = AutonomousEmulator(
            hardened, technique, campaign_cycles=cycles, campaign_faults=faults
        ).synthesize(cycles, faults)
        assert hardened_summary.modified.ffs > plain_summary.modified.ffs
        assert hardened_summary.system.luts > plain_summary.system.luts

    def test_registry_name_is_schemes(self):
        assert set(available_schemes()) == set(ALL_SCHEMES)

    def test_selective_width_matches_helper(self):
        assert WIDTH == build_datapath().num_ffs
