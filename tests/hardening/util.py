"""Shared fixture circuit for the hardening tests.

A 4-bit rotate-xor datapath whose outputs expose the state directly, so
corrupted state is immediately visible on the outputs — the sharpest
possible probe for masking (TMR) and detection (DWC/parity) claims.
"""

from repro.netlist.builder import NetlistBuilder

WIDTH = 4


def build_datapath(name: str = "datapath") -> "NetlistBuilder.netlist":
    builder = NetlistBuilder(name)
    data = builder.inputs("data", WIDTH)
    d_nets = [builder.netlist.fresh_net(f"d{i}") for i in range(WIDTH)]
    q_nets = [
        builder.dff(d_nets[i], q=f"state[{i}]", init=0, name=f"ff{i}")
        for i in range(WIDTH)
    ]
    for i in range(WIDTH):
        builder.xor_(q_nets[(i - 1) % WIDTH], data[i], out=d_nets[i])
    builder.outputs("out", q_nets)
    return builder.build()
