"""Hardened circuits through the registry, specs, runner, store and CLI.

The acceptance surface of the hardening subsystem: ``hardened:<scheme>:
<base>`` composes with every circuit family and the whole campaign
machinery — sharded runner, resume, adaptive sampling — under campaign
ids distinct from the unhardened base.
"""

import json

import pytest

from repro.circuits.registry import build_circuit
from repro.errors import HardeningError
from repro.run.cli import main
from repro.run.runner import CampaignRunner
from repro.run.spec import CampaignSpec


class TestRegistryComposition:
    def test_hardened_builtin(self):
        plain = build_circuit("b02")
        hardened = build_circuit("hardened:tmr:b02")
        assert hardened.num_ffs == 3 * plain.num_ffs
        assert hardened.name == "b02~tmr"

    def test_hardened_corpus(self):
        plain = build_circuit("corpus:s27")
        hardened = build_circuit("hardened:dwc:corpus:s27")
        assert hardened.num_ffs == 2 * plain.num_ffs
        assert hardened.outputs[-1] == "dwc_err"

    def test_hardened_proc(self):
        plain = build_circuit("proc:16")
        hardened = build_circuit("hardened:parity:proc:16")
        assert hardened.num_ffs == plain.num_ffs + 1

    def test_hardened_file(self, tmp_path):
        from repro.netlist.textio import dumps_netlist

        path = tmp_path / "c.bnet"
        path.write_text(dumps_netlist(build_circuit("b01")))
        hardened = build_circuit(f"hardened:tmr:file:{path}")
        assert hardened.num_ffs == 3 * build_circuit("b01").num_ffs


class TestSpecComposition:
    def test_both_spellings_are_one_spec(self):
        by_name = CampaignSpec(circuit="hardened:tmr:b04", technique="mask_scan")
        by_field = CampaignSpec(
            circuit="b04", technique="mask_scan", hardening="tmr"
        )
        assert by_name == by_field
        assert by_name.campaign_id == by_field.campaign_id
        assert by_name.effective_circuit == "hardened:tmr:b04"

    def test_campaign_id_distinct_from_plain(self):
        plain = CampaignSpec(circuit="b04", technique="mask_scan")
        schemes = ("tmr", "tmr_unvoted", "dwc", "parity")
        ids = {plain.campaign_id}
        for scheme in schemes:
            ids.add(plain.with_hardening(scheme).campaign_id)
        assert len(ids) == len(schemes) + 1

    def test_oracle_and_fault_keys_carry_hardening(self):
        spec = CampaignSpec(circuit="b04", technique="mask_scan", hardening="tmr")
        assert spec.oracle_key()["hardening"] == "tmr"
        assert spec.fault_key()["hardening"] == "tmr"
        plain = CampaignSpec(circuit="b04", technique="mask_scan")
        assert "hardening" not in plain.oracle_key()
        assert "hardening" not in plain.fault_key()

    def test_round_trip_and_matrix(self):
        spec = CampaignSpec(circuit="hardened:tmr:b02", technique="mask_scan")
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        specs = CampaignSpec.matrix(
            circuits=["b02"], techniques=["mask_scan"], hardening="dwc"
        )
        assert all(s.hardening == "dwc" for s in specs)

    def test_set_hardening_composes_over_hardened_circuit(self):
        # A set scheme means the fields describe the *outermost* layer;
        # the hardened: circuit name is the (nested) base underneath.
        spec = CampaignSpec(
            circuit="hardened:tmr:b02",
            technique="mask_scan",
            hardening="dwc",
        )
        assert spec.circuit == "hardened:tmr:b02"
        assert spec.hardening == "dwc"
        assert spec.effective_circuit == "hardened:dwc:hardened:tmr:b02"
        # idempotent under round-trips — re-normalising changes nothing
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_conflicting_flop_subsets_rejected(self):
        with pytest.raises(Exception, match="pick one spelling"):
            CampaignSpec(
                circuit="hardened:tmr@ff$rmax[0]:b04",
                technique="mask_scan",
                hardening_flops=["ff$rmax[1]"],
            )

    def test_flops_without_scheme_rejected(self):
        with pytest.raises(Exception, match="no hardening scheme"):
            CampaignSpec(
                circuit="b04",
                technique="mask_scan",
                hardening_flops=["ff$rmax[0]"],
            )

    def test_population_counts_hardened_flops(self):
        spec = CampaignSpec(
            circuit="b02", technique="mask_scan", num_cycles=10, hardening="tmr"
        )
        netlist = spec.build_netlist()
        assert spec.population_size(netlist) == netlist.num_ffs * 10
        assert netlist.num_ffs == 3 * build_circuit("b02").num_ffs

    def test_imported_testbench_kind_survives_hardening(self):
        spec = CampaignSpec(
            circuit="hardened:tmr:corpus:s27", technique="mask_scan"
        )
        assert spec.is_imported()
        assert spec.resolved_testbench_kind() == "imported"
        assert spec.circuit_digest() is not None


class TestSubsetSpecs:
    """The ``hardened:<scheme>@<flop>+<flop>:<base>`` subset grammar:
    registry construction, spec identity and store separation."""

    def test_registry_builds_subset(self):
        plain = build_circuit("b02")
        subset = build_circuit("hardened:tmr@ff$phase[0]+ff$shift[1]:b02")
        # TMR adds two copies per protected flop only
        assert subset.num_ffs == plain.num_ffs + 4

    def test_subset_order_is_canonical(self):
        forward = CampaignSpec(
            circuit="hardened:tmr@ff$phase[0]+ff$shift[1]:b02",
            technique="mask_scan",
        )
        backward = CampaignSpec(
            circuit="hardened:tmr@ff$shift[1]+ff$phase[0]:b02",
            technique="mask_scan",
        )
        assert forward == backward
        assert forward.campaign_id == backward.campaign_id

    def test_subset_ids_distinct_per_subset(self):
        def spec_for(circuit):
            return CampaignSpec(circuit=circuit, technique="mask_scan")

        ids = {
            spec_for("b02").campaign_id,
            spec_for("hardened:tmr:b02").campaign_id,
            spec_for("hardened:tmr@ff$phase[0]:b02").campaign_id,
            spec_for("hardened:tmr@ff$shift[0]:b02").campaign_id,
            spec_for(
                "hardened:tmr@ff$phase[0]+ff$shift[0]:b02"
            ).campaign_id,
        }
        assert len(ids) == 5

    def test_subset_in_oracle_key_only_when_set(self):
        subset = CampaignSpec(
            circuit="hardened:tmr@ff$phase[0]:b02", technique="mask_scan"
        )
        assert subset.oracle_key()["hardening_flops"] == ["ff$phase[0]"]
        full = CampaignSpec(
            circuit="hardened:tmr:b02", technique="mask_scan"
        )
        assert "hardening_flops" not in full.oracle_key()

    def test_nested_layers_compose(self):
        spec = CampaignSpec(
            circuit="hardened:parity@ff$shift[0]:b02",
            technique="mask_scan",
            hardening="tmr",
            hardening_flops=["ff$phase[0]"],
        )
        assert spec.base_circuit == "b02"
        assert (
            spec.effective_circuit
            == "hardened:tmr@ff$phase[0]:hardened:parity@ff$shift[0]:b02"
        )
        netlist = spec.build_netlist()
        # parity adds one stored bit, tmr adds two copies of one flop
        assert netlist.num_ffs == build_circuit("b02").num_ffs + 3

    def test_subset_store_resume_and_separation(self, tmp_path):
        lines = []
        subset = CampaignSpec(
            circuit="hardened:tmr@ff$phase[0]:b02",
            technique="mask_scan",
            num_cycles=12,
        )
        edited = CampaignSpec(
            circuit="hardened:tmr@ff$phase[0]+ff$shift[0]:b02",
            technique="mask_scan",
            num_cycles=12,
        )
        runner = CampaignRunner(store_root=str(tmp_path), progress=lines.append)
        first = runner.grade(subset)
        assert subset.campaign_id.startswith("hardened-tmr-1ff-b02-")
        assert (tmp_path / subset.campaign_id / "shards.jsonl").exists()
        lines.clear()
        resumed = runner.grade(subset)
        assert any("resuming" in line for line in lines)
        assert resumed.fail_cycles == first.fail_cycles
        # an edited subset is a different campaign: fresh store, full
        # regrade, no resume from the old one
        lines.clear()
        runner.grade(edited)
        assert edited.campaign_id != subset.campaign_id
        assert (tmp_path / edited.campaign_id / "shards.jsonl").exists()
        assert not any("resuming" in line for line in lines)


class TestRunnerAndStore:
    def test_sharded_pool_matches_serial(self):
        spec = CampaignSpec(
            circuit="hardened:tmr:b04",
            technique="time_multiplexed",
            num_cycles=16,
        )
        serial = CampaignRunner(workers=1).grade(spec)
        pooled = CampaignRunner(workers=2, shards=4).grade(spec)
        assert serial.fail_cycles == pooled.fail_cycles
        assert serial.vanish_cycles == pooled.vanish_cycles

    def test_store_resume_under_hardened_id(self, tmp_path):
        lines = []
        spec = CampaignSpec(
            circuit="hardened:dwc:b02", technique="mask_scan", num_cycles=12
        )
        runner = CampaignRunner(store_root=str(tmp_path), progress=lines.append)
        first = runner.grade(spec)
        assert (tmp_path / spec.campaign_id / "shards.jsonl").exists()
        assert spec.campaign_id.startswith("hardened-dwc-b02-")
        lines.clear()
        resumed = runner.grade(spec)
        assert any("resuming" in line for line in lines)
        assert resumed.fail_cycles == first.fail_cycles

    def test_adaptive_campaign_on_hardened_circuit(self):
        spec = CampaignSpec(
            circuit="hardened:parity:b02", technique="mask_scan", num_cycles=16
        )
        adaptive = CampaignRunner().run_adaptive(spec, target_half_width=0.25)
        assert adaptive.estimates
        assert adaptive.rounds

    def test_sampled_stratified_campaign(self):
        spec = CampaignSpec(
            circuit="hardened:tmr:b02",
            technique="mask_scan",
            num_cycles=16,
            sample=40,
            sampling="stratified",
        )
        oracle = CampaignRunner().grade(spec)
        assert oracle.num_faults == 40


class TestCli:
    def test_run_with_hardening_flag(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "b02",
                "--hardening", "tmr",
                "--cycles", "12",
                "--no-store",
                "--quiet",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out[out.index("{"):])
        assert payload["spec"]["hardening"] == "tmr"
        assert payload["spec"]["circuit"] == "b02"
        assert payload["campaign_id"].startswith("hardened-tmr-b02-")

    def test_run_with_hardening_flops_flag(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "b02",
                "--hardening", "tmr",
                "--hardening-flops", "ff$phase[0]+ff$shift[1]",
                "--cycles", "12",
                "--no-store",
                "--quiet",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out[out.index("{"):])
        assert payload["spec"]["hardening_flops"] == [
            "ff$phase[0]", "ff$shift[1]"
        ]
        assert payload["campaign_id"].startswith("hardened-tmr-2ff-b02-")

    def test_run_with_hardened_circuit_name(self, capsys):
        code = main(
            [
                "run",
                "--circuit", "hardened:dwc:b02",
                "--cycles", "12",
                "--no-store",
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "b02~dwc" in out

    def test_harden_subcommand_writes_netlist(self, tmp_path, capsys):
        from repro.netlist.textio import netlist_from_file

        out_path = tmp_path / "hardened.bnet"
        code = main(
            [
                "harden",
                "--circuit", "b02",
                "--scheme", "tmr",
                "-o", str(out_path),
            ]
        )
        assert code == 0
        assert "200% FFs" in capsys.readouterr().out
        reloaded = netlist_from_file(out_path)
        assert reloaded.num_ffs == 3 * build_circuit("b02").num_ffs

    def test_harden_subcommand_json(self, capsys):
        code = main(["harden", "--circuit", "b02", "--scheme", "parity", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flops"]["hardened"] == payload["flops"]["plain"] + 1

    def test_harden_rejects_unknown_scheme_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["harden", "--circuit", "b02", "--scheme", "bogus"])

    def test_report_hardness(self, capsys):
        code = main(
            [
                "report",
                "--hardness",
                "--circuit", "b02",
                "--cycles", "16",
                "--schemes", "tmr",
                "--fault-models", "seu",
                "--no-store",
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Hardness evaluation — b02" in out
        assert "hardened:tmr" in out
        assert "removes 100.0% of the plain seu failure rate" in out

    def test_sweep_hardened_circuit(self, capsys):
        code = main(
            [
                "sweep",
                "--circuits", "hardened:tmr:b02",
                "--techniques", "mask_scan",
                "--cycles", "12",
                "--no-store",
                "--quiet",
                "--workers", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Sweep — hardened:tmr:b02" in out


def test_malformed_hardened_name_raises_clear_error():
    for name, fragment in (
        ("hardened:bogus:b04", "bogus"),
        ("hardened:tmr", "malformed"),
        ("hardened::b04", "malformed"),
        ("hardened:tmr:", "malformed"),
    ):
        with pytest.raises(HardeningError, match=fragment):
            build_circuit(name)
