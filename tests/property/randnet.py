"""Seeded random-netlist generator for the differential suite.

Generates small, strictly valid synchronous netlists with a fixed
``random.Random(seed)`` stream: same seed, same circuit, forever — so a
cross-engine disagreement found in CI reproduces locally from the seed
alone. Construction is loop-free by layering: gates only consume primary
inputs, flop outputs and earlier gate outputs; sequential feedback
(flop d from any net, including later logic) is unrestricted, which is
where grading engines actually diverge when they have bugs.
"""

from __future__ import annotations

import random
from typing import List

from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist

#: gate types the generator draws from, with their input-arity bounds.
_GATE_POOL = (
    ("and", 2, 3),
    ("or", 2, 3),
    ("nand", 2, 3),
    ("nor", 2, 3),
    ("xor", 2, 3),
    ("xnor", 2, 2),
    ("inv", 1, 1),
    ("buf", 1, 1),
    ("mux2", 3, 3),
)


def random_netlist(
    seed: int,
    min_flops: int = 2,
    max_flops: int = 8,
    max_gates: int = 24,
    max_inputs: int = 5,
) -> Netlist:
    """One deterministic random circuit for ``seed``."""
    rng = random.Random(seed)
    netlist = Netlist(f"rand{seed}")

    inputs = [
        netlist.add_input(f"in{i}") for i in range(rng.randint(2, max_inputs))
    ]
    num_flops = rng.randint(min_flops, max_flops)
    flop_qs = [f"q{i}" for i in range(num_flops)]

    pool: List[str] = inputs + flop_qs
    gate_outs: List[str] = []
    for index in range(rng.randint(num_flops, max_gates)):
        gate_type, low, high = rng.choice(_GATE_POOL)
        arity = rng.randint(low, high)
        operands = [rng.choice(pool + gate_outs) for _ in range(arity)]
        output = f"g{index}"
        netlist.add_gate(f"gate{index}", gate_type, operands, output)
        gate_outs.append(output)

    for i, q_net in enumerate(flop_qs):
        d_net = rng.choice(pool + gate_outs)
        netlist.add_dff(f"ff{i}", d_net, q_net, init=rng.randint(0, 1))

    # a few deliberate outputs, then every dangling net becomes one so
    # strict validation (no driven-but-unused nets) passes
    candidates = flop_qs + gate_outs
    declared = set()
    for net in rng.sample(candidates, k=min(3, len(candidates))):
        netlist.add_output(net)
        declared.add(net)
    consumed = set(declared)
    for gate in netlist.gates.values():
        consumed.update(gate.inputs)
    for dff in netlist.dffs.values():
        consumed.add(dff.d)
    for net in candidates:
        if net not in consumed and net not in declared:
            netlist.add_output(net)
            declared.add(net)

    validate_netlist(netlist)
    return netlist
