"""Property-based tests (hypothesis) on core invariants.

These target the load-bearing algebra of the library: logic identities,
oracle/backend agreement on random circuits, adder/comparator lowering
against Python integer semantics, and mapper coverage invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.model import SeuFault
from repro.logic.tables import eval_gate
from repro.netlist.builder import NetlistBuilder
from repro.rtl import RtlModule, const
from repro.sim.cycle import CycleSimulator, replay_single_fault, run_golden
from repro.sim.parallel import grade_faults
from repro.sim.vectors import Testbench
from repro.synth.lutmap import map_to_luts
from repro.util.bitops import bits_from_int, bits_to_int, clog2, mask

bits = st.integers(min_value=0, max_value=1)


class TestBitops:
    @given(st.integers(min_value=1, max_value=1 << 40))
    def test_clog2_bound(self, value):
        width = clog2(value)
        assert (1 << width) >= value
        if width:
            assert (1 << (width - 1)) < value

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_bits_roundtrip(self, value):
        assert bits_to_int(bits_from_int(value, 64)) == value

    @given(st.integers(min_value=0, max_value=63))
    def test_mask_popcount(self, width):
        assert bin(mask(width)).count("1") == width


class TestLogicIdentities:
    @given(bits, bits, bits)
    def test_de_morgan(self, a, b, c):
        assert eval_gate("nand", [a, b, c]) == eval_gate(
            "or", [a ^ 1, b ^ 1, c ^ 1]
        )
        assert eval_gate("nor", [a, b, c]) == eval_gate(
            "and", [a ^ 1, b ^ 1, c ^ 1]
        )

    @given(bits, bits)
    def test_xor_xnor_complement(self, a, b):
        assert eval_gate("xor", [a, b]) == eval_gate("xnor", [a, b]) ^ 1

    @given(bits, bits, bits)
    def test_mux_as_and_or(self, s, d0, d1):
        mux_out = eval_gate("mux2", [s, d0, d1])
        sum_of_products = (s & d1) | ((s ^ 1) & d0)
        assert mux_out == sum_of_products


class TestRtlArithmetic:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_adder_matches_python(self, a, b):
        m = RtlModule("add")
        x = m.input("x", 8)
        y = m.input("y", 8)
        m.output("s", x + y)
        sim = CycleSimulator(m.elaborate())
        assert sim.step(a | (b << 8)) == (a + b) & 0xFF

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_sub_and_lt_consistent(self, a, b):
        m = RtlModule("cmp")
        x = m.input("x", 8)
        y = m.input("y", 8)
        m.output("d", x - y)
        m.output("lt", x < y)
        sim = CycleSimulator(m.elaborate())
        out = sim.step(a | (b << 8))
        assert out & 0xFF == (a - b) & 0xFF
        assert (out >> 8) & 1 == (1 if a < b else 0)


def random_sequential_netlist(draw):
    """A random small sequential circuit from a hypothesis draw."""
    builder = NetlistBuilder("rand")
    num_inputs = draw(st.integers(min_value=1, max_value=3))
    inputs = [builder.input(f"i{k}") for k in range(num_inputs)]
    num_flops = draw(st.integers(min_value=1, max_value=5))
    q_nets = []
    d_holes = []
    for k in range(num_flops):
        hole = builder.netlist.fresh_net(f"d{k}")
        q = builder.dff(hole, q=f"q{k}", init=draw(bits), name=f"ff{k}")
        q_nets.append(q)
        d_holes.append(hole)
    pool = list(inputs) + q_nets
    for hole in d_holes:
        op = draw(st.sampled_from(["and", "or", "xor", "mux2", "inv"]))
        if op == "inv":
            builder.inv(draw(st.sampled_from(pool)), out=hole)
        elif op == "mux2":
            picks = [draw(st.sampled_from(pool)) for _ in range(3)]
            builder.mux(picks[0], picks[1], picks[2], out=hole)
        else:
            a, b = draw(st.sampled_from(pool)), draw(st.sampled_from(pool))
            getattr(builder, f"{op}_")(a, b, out=hole)
    builder.output_net("o0", draw(st.sampled_from(q_nets)))
    builder.output_net(
        "o1", builder.xor_(draw(st.sampled_from(pool)), draw(st.sampled_from(q_nets)))
    )
    # random draws may leave some flop outputs unconsumed; that is fine
    return builder.build(allow_dangling=True)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_oracle_agrees_with_replay_on_random_circuits(data):
    """The keystone property: for random circuits, random stimulus and
    every (flop, cycle) fault, the parallel oracle, the bigint backend and
    the serial replay agree exactly."""
    netlist = random_sequential_netlist(data.draw)
    cycles = data.draw(st.integers(min_value=2, max_value=8))
    vectors = [
        data.draw(st.integers(min_value=0, max_value=(1 << len(netlist.inputs)) - 1))
        for _ in range(cycles)
    ]
    bench = Testbench(list(netlist.inputs), vectors)
    faults = [
        SeuFault(cycle=c, flop_index=f)
        for c in range(cycles)
        for f in range(netlist.num_ffs)
    ]
    numpy_result = grade_faults(netlist, bench, faults, backend="numpy")
    bigint_result = grade_faults(netlist, bench, faults, backend="bigint")
    assert numpy_result.fail_cycles == bigint_result.fail_cycles
    assert numpy_result.vanish_cycles == bigint_result.vanish_cycles
    golden = run_golden(netlist, bench)
    for index, fault in enumerate(faults):
        reference = replay_single_fault(
            netlist, bench, fault.flop_index, fault.cycle, golden
        )
        assert numpy_result.fail_cycles[index] == reference["fail_cycle"]
        assert numpy_result.vanish_cycles[index] == reference["vanish_cycle"]


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_lut_mapping_covers_random_circuits(data):
    """Every mapped circuit: all roots covered, every cut within k, and
    cut leaves limited to inputs/flop-outputs/mapped nets."""
    netlist = random_sequential_netlist(data.draw)
    mapping = map_to_luts(netlist, k=4)
    gate_outputs = {g.output for g in netlist.gates.values()}
    roots = {net for net in netlist.outputs if net in gate_outputs}
    roots |= {d.d for d in netlist.dffs.values() if d.d in gate_outputs}
    const_nets = {
        g.output
        for g in netlist.gates.values()
        if g.gate_type in ("const0", "const1")
    }
    assert roots - const_nets <= set(mapping.luts)
    valid_leaves = (
        set(netlist.inputs)
        | {d.q for d in netlist.dffs.values()}
        | set(mapping.luts)
    )
    for root, cut in mapping.luts.items():
        assert len(cut) <= 4
        for leaf in cut:
            assert leaf in valid_leaves or leaf in const_nets


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_vanish_is_permanent(data):
    """Once the oracle says a fault vanished, replaying past that point
    must keep outputs identical to golden (determinism invariant)."""
    netlist = random_sequential_netlist(data.draw)
    cycles = 8
    vectors = [
        data.draw(st.integers(min_value=0, max_value=(1 << len(netlist.inputs)) - 1))
        for _ in range(cycles)
    ]
    bench = Testbench(list(netlist.inputs), vectors)
    faults = [SeuFault(cycle=0, flop_index=f) for f in range(netlist.num_ffs)]
    oracle = grade_faults(netlist, bench, faults)
    golden = run_golden(netlist, bench)
    for index in range(len(faults)):
        vanish = oracle.vanish_cycles[index]
        if vanish == -1 or oracle.fail_cycles[index] != -1:
            continue
        # silent fault: outputs equal golden for every cycle
        sim = CycleSimulator(netlist)
        sim.set_state(golden.states[0])
        sim.flip_flop_bit(faults[index].flop_index)
        for cycle, vector in enumerate(vectors):
            assert sim.step(vector) == golden.outputs[cycle]
