"""Differential grading over seeded random netlists.

The library's core correctness claim: for *any* netlist, fault model and
fault, the fused, numpy and bigint engines produce bit-identical
(fail_cycle, vanish_cycle) verdicts — and agree with the scalar
reference replay. This suite drives that claim over the random-netlist
generator, plain and under every hardening transform, for every fault
model family (seu, mbu:2, stuck_at_0/1, intermittent).
"""

import pytest

from repro.faults.models import get_fault_model
from repro.hardening import apply_hardening, available_schemes
from repro.sim.cycle import replay_fault, run_golden
from repro.sim.parallel import grade_faults
from repro.sim.vectors import random_testbench

from tests.property.randnet import random_netlist

ENGINES = ("fused", "numpy", "bigint")
MODELS = ("seu", "mbu:2", "stuck_at_0", "stuck_at_1", "intermittent")
CYCLES = 20


def _population(netlist, model_name, stride=1):
    model = get_fault_model(model_name)
    faults = model.population(netlist, CYCLES)
    return faults[::stride]


def _verdicts(netlist, bench, faults, engine):
    result = grade_faults(netlist, bench, faults, backend=engine)
    return list(zip(result.fail_cycles, result.vanish_cycles))


class TestPlainNetlists:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("model_name", MODELS)
    def test_engines_bit_exact(self, seed, model_name):
        netlist = random_netlist(seed)
        bench = random_testbench(netlist, CYCLES, seed=seed)
        faults = _population(netlist, model_name)
        reference = _verdicts(netlist, bench, faults, ENGINES[0])
        for engine in ENGINES[1:]:
            assert _verdicts(netlist, bench, faults, engine) == reference, (
                f"{engine} disagrees with {ENGINES[0]} on seed={seed}, "
                f"model={model_name}"
            )

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("model_name", ("seu", "stuck_at_1", "intermittent"))
    def test_engines_match_serial_replay(self, seed, model_name):
        """The bit-parallel verdicts equal the one-fault-at-a-time
        scalar reference, fault by fault."""
        netlist = random_netlist(seed)
        bench = random_testbench(netlist, CYCLES, seed=seed)
        faults = _population(netlist, model_name, stride=5)
        golden = run_golden(netlist, bench)
        graded = _verdicts(netlist, bench, faults, "fused")
        for fault, (fail_cycle, vanish_cycle) in zip(faults, graded):
            replayed = replay_fault(netlist, bench, fault, golden=golden)
            assert (fail_cycle, vanish_cycle) == (
                replayed["fail_cycle"],
                replayed["vanish_cycle"],
            ), f"seed={seed}, model={model_name}, fault={fault.describe()}"


class TestHardenedNetlists:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("scheme", sorted(available_schemes()))
    @pytest.mark.parametrize("model_name", ("seu", "mbu:2", "stuck_at_0"))
    def test_engines_bit_exact_on_hardened(self, seed, scheme, model_name):
        netlist = apply_hardening(scheme, random_netlist(100 + seed))
        bench = random_testbench(netlist, CYCLES, seed=seed)
        faults = _population(netlist, model_name, stride=3)
        reference = _verdicts(netlist, bench, faults, ENGINES[0])
        for engine in ENGINES[1:]:
            assert _verdicts(netlist, bench, faults, engine) == reference, (
                f"{engine} disagrees on seed={seed}, scheme={scheme}, "
                f"model={model_name}"
            )

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("scheme", sorted(available_schemes()))
    def test_hardened_golden_run_matches_plain(self, seed, scheme):
        """Hardening never changes the fault-free function: the original
        output bits agree cycle by cycle."""
        plain = random_netlist(100 + seed)
        hardened = apply_hardening(scheme, plain)
        bench = random_testbench(plain, CYCLES, seed=seed)
        plain_outputs = run_golden(plain, bench).outputs
        hardened_outputs = run_golden(hardened, bench).outputs
        original = (1 << len(plain.outputs)) - 1
        assert [word & original for word in hardened_outputs] == plain_outputs

    @pytest.mark.parametrize("seed", range(2))
    def test_tmr_masks_random_netlists(self, seed):
        """TMR's masking claim holds beyond the ITC benchmarks: on any
        random netlist, the complete single-fault set is failure-free."""
        netlist = apply_hardening("tmr", random_netlist(200 + seed))
        bench = random_testbench(netlist, CYCLES, seed=seed)
        faults = _population(netlist, "seu")
        result = grade_faults(netlist, bench, faults)
        assert all(cycle == -1 for cycle in result.fail_cycles)
        assert all(cycle != -1 for cycle in result.vanish_cycles)


def test_generator_is_deterministic():
    from repro.netlist.textio import dumps_netlist

    assert dumps_netlist(random_netlist(42)) == dumps_netlist(random_netlist(42))


def test_generator_meets_floor():
    for seed in range(10):
        netlist = random_netlist(seed)
        assert netlist.num_ffs >= 2  # mbu:2 needs two flops
        assert netlist.outputs
