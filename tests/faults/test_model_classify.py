"""Unit tests for the SEU fault model and classification rules."""

import pytest

from repro.errors import CampaignError
from repro.faults.classify import (
    FaultClass,
    classification_counts,
    classification_percentages,
    classify_outcome,
)
from repro.faults.model import SeuFault, exhaustive_fault_list, faults_for_flop
from tests.conftest import build_counter


class TestSeuFault:
    def test_validation(self):
        with pytest.raises(CampaignError):
            SeuFault(cycle=-1, flop_index=0)
        with pytest.raises(CampaignError):
            SeuFault(cycle=0, flop_index=-2)

    def test_ordering_is_cycle_major(self):
        faults = [SeuFault(cycle=1, flop_index=0), SeuFault(cycle=0, flop_index=5)]
        assert sorted(faults)[0].cycle == 0

    def test_describe(self):
        assert "pc" in SeuFault(cycle=3, flop_index=1, flop_name="pc").describe()
        assert "cycle 3" in SeuFault(cycle=3, flop_index=1).describe()


class TestFaultLists:
    def test_exhaustive_count_is_n_times_t(self):
        counter = build_counter(4)
        faults = exhaustive_fault_list(counter, 10)
        assert len(faults) == 4 * 10

    def test_exhaustive_matches_paper_scale(self):
        # the b14 experiment: 215 flops x 160 cycles = 34,400
        counter = build_counter(4)
        names = [f"ff{i}" for i in range(215)]
        faults = exhaustive_fault_list(counter, 160, flop_names=names)
        assert len(faults) == 34_400

    def test_cycle_major_order(self):
        counter = build_counter(3)
        faults = exhaustive_fault_list(counter, 4)
        cycles = [fault.cycle for fault in faults]
        assert cycles == sorted(cycles)

    def test_flop_names_attached(self):
        counter = build_counter(2)
        faults = exhaustive_fault_list(counter, 1)
        assert faults[0].flop_name == counter.ff_names()[0]

    def test_zero_cycles_rejected(self):
        counter = build_counter(2)
        with pytest.raises(CampaignError):
            exhaustive_fault_list(counter, 0)

    def test_faults_for_flop(self):
        counter = build_counter(3)
        faults = faults_for_flop(counter, 1, 6)
        assert len(faults) == 6
        assert all(f.flop_index == 1 for f in faults)

    def test_faults_for_bad_flop(self):
        counter = build_counter(3)
        with pytest.raises(CampaignError):
            faults_for_flop(counter, 9, 6)


class TestClassification:
    def test_failure_dominates(self):
        assert classify_outcome(5, 7) is FaultClass.FAILURE
        assert classify_outcome(5, -1) is FaultClass.FAILURE
        # even when the state converged before the failure was seen
        assert classify_outcome(5, 2) is FaultClass.FAILURE

    def test_silent(self):
        assert classify_outcome(-1, 3) is FaultClass.SILENT

    def test_latent(self):
        assert classify_outcome(-1, -1) is FaultClass.LATENT

    def test_counts_and_percentages(self):
        verdicts = [FaultClass.FAILURE] * 3 + [FaultClass.SILENT]
        counts = classification_counts(verdicts)
        assert counts[FaultClass.FAILURE] == 3
        assert counts[FaultClass.LATENT] == 0
        pct = classification_percentages(counts)
        assert pct[FaultClass.FAILURE] == 75.0
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_percentages_of_nothing(self):
        pct = classification_percentages(
            {FaultClass.FAILURE: 0, FaultClass.LATENT: 0, FaultClass.SILENT: 0}
        )
        assert all(value == 0.0 for value in pct.values())
