"""Unit tests for the fault dictionary and statistical sampling."""

import pytest

from repro.errors import CampaignError
from repro.faults.classify import FaultClass
from repro.faults.dictionary import FaultDictionary, FaultRecord
from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.faults.sampling import (
    SampleEstimate,
    sample_fault_list,
    wilson_interval,
)
from tests.conftest import build_counter


def make_dictionary():
    d = FaultDictionary(num_cycles=10, flop_names=["a", "b"])
    d.add(FaultRecord(SeuFault(0, 0, "a"), FaultClass.FAILURE, 2, -1))
    d.add(FaultRecord(SeuFault(1, 0, "a"), FaultClass.FAILURE, 1, -1))
    d.add(FaultRecord(SeuFault(2, 1, "b"), FaultClass.SILENT, -1, 4))
    d.add(FaultRecord(SeuFault(3, 1, "b"), FaultClass.LATENT, -1, -1))
    return d


class TestDictionary:
    def test_counts(self):
        counts = make_dictionary().counts()
        assert counts[FaultClass.FAILURE] == 2
        assert counts[FaultClass.SILENT] == 1
        assert counts[FaultClass.LATENT] == 1

    def test_percentages_sum_to_100(self):
        pct = make_dictionary().percentages()
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_per_flop_failures(self):
        failures = make_dictionary().per_flop_failures()
        assert failures == {"a": 2, "b": 0}

    def test_weakest_flops_ranked(self):
        ranked = make_dictionary().weakest_flops(2)
        assert ranked[0] == ("a", 2)

    def test_latency_definitions(self):
        d = make_dictionary()
        records = list(d)
        # failure at cycle 2 injected at 0 -> latency 2
        assert records[0].latency(10) == 2
        # silent vanish at 4 injected at 2 -> latency 2
        assert records[2].latency(10) == 2
        # latent injected at 3 -> runs to end: 10 - 3
        assert records[3].latency(10) == 7

    def test_mean_latency_filter(self):
        d = make_dictionary()
        # failure latencies: (2-0)=2 and (1-1)=0 -> mean 1.0
        assert d.mean_latency(FaultClass.FAILURE) == pytest.approx(1.0)
        assert d.mean_latency(FaultClass.LATENT) == pytest.approx(7.0)

    def test_mean_latency_empty_is_zero(self):
        d = FaultDictionary(5, ["x"])
        assert d.mean_latency() == 0.0

    def test_fault_outside_testbench_rejected(self):
        d = FaultDictionary(5, ["x"])
        with pytest.raises(CampaignError):
            d.add(FaultRecord(SeuFault(5, 0, "x"), FaultClass.LATENT, -1, -1))

    def test_summary_mentions_counts(self):
        text = make_dictionary().summary()
        assert "4 faults" in text
        assert "failure" in text


class TestSampling:
    def test_sample_is_deterministic(self):
        counter = build_counter(4)
        faults = exhaustive_fault_list(counter, 20)
        a = sample_fault_list(faults, 10, seed=3)
        b = sample_fault_list(faults, 10, seed=3)
        assert a == b

    def test_sample_sorted_cycle_major(self):
        counter = build_counter(4)
        faults = exhaustive_fault_list(counter, 20)
        sample = sample_fault_list(faults, 15, seed=1)
        assert sample == sorted(sample)

    def test_sample_size_validated(self):
        counter = build_counter(2)
        faults = exhaustive_fault_list(counter, 2)
        with pytest.raises(CampaignError):
            sample_fault_list(faults, 0)
        with pytest.raises(CampaignError):
            sample_fault_list(faults, 100)


class TestWilson:
    def test_interval_contains_point_estimate(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high

    def test_narrows_with_more_trials(self):
        low_small, high_small = wilson_interval(5, 10)
        low_big, high_big = wilson_interval(500, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_edge_cases_stay_in_unit_interval(self):
        low, high = wilson_interval(0, 20)
        assert low == pytest.approx(0.0, abs=1e-9) and high < 0.3
        low, high = wilson_interval(20, 20)
        assert high == pytest.approx(1.0, abs=1e-9) and low > 0.7

    def test_validation(self):
        with pytest.raises(CampaignError):
            wilson_interval(1, 0)
        with pytest.raises(CampaignError):
            wilson_interval(5, 3)
        with pytest.raises(CampaignError):
            wilson_interval(1, 10, confidence=1.5)

    def test_z_score_95_matches_known_value(self):
        from repro.faults.sampling import _z_score

        assert _z_score(0.95) == pytest.approx(1.95996, abs=1e-3)

    def test_estimate_describe(self):
        estimate = SampleEstimate(successes=49, trials=100)
        text = estimate.describe()
        assert "49.0 %" in text
        assert "@95%" in text
