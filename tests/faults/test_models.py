"""Fault-model registry and per-model injection semantics."""

import pytest

from repro.errors import CampaignError
from repro.faults.model import SeuFault, exhaustive_fault_list
from repro.faults.models import (
    IntermittentFault,
    MbuFault,
    StuckAtFault,
    available_models,
    get_fault_model,
)
from repro.sim.cycle import replay_fault, replay_single_fault, run_golden
from repro.sim.vectors import constant_testbench, random_testbench
from tests.conftest import build_counter, build_shift_register, build_toggle


class TestRegistry:
    def test_builtin_models_registered(self):
        names = available_models()
        assert "seu" in names
        assert "stuck_at_0" in names and "stuck_at_1" in names

    def test_parameterized_lookup(self):
        assert get_fault_model("mbu").width == 2
        assert get_fault_model("mbu:4").width == 4
        model = get_fault_model("intermittent:8:3")
        assert (model.period, model.duty) == (8, 3)

    def test_parsed_models_memoized(self):
        assert get_fault_model("mbu:3") is get_fault_model("mbu:3")

    def test_unknown_model_rejected(self):
        with pytest.raises(CampaignError, match="unknown fault model"):
            get_fault_model("cosmic_ray")
        with pytest.raises(CampaignError):
            get_fault_model("mbu:zero")
        with pytest.raises(CampaignError):
            get_fault_model("mbu:1")  # width 1 is the seu model
        with pytest.raises(CampaignError):
            get_fault_model("intermittent:4:4")  # duty must be < period


class TestPopulations:
    def test_seu_population_is_the_legacy_exhaustive_list(self):
        counter = build_counter()
        population = get_fault_model("seu").population(counter, 9)
        assert population == exhaustive_fault_list(counter, 9)
        assert all(type(fault) is SeuFault for fault in population)

    @pytest.mark.parametrize(
        "name", ["seu", "mbu:2", "stuck_at_0", "stuck_at_1", "intermittent"]
    )
    def test_population_sorted_and_sized(self, name):
        counter = build_counter()
        model = get_fault_model(name)
        population = model.population(counter, 7)
        assert population == sorted(population)
        assert len(population) == model.population_size(counter, 7)
        assert all(fault.cycle < 7 for fault in population)

    def test_mbu_runs_fit_the_register_file(self):
        shift = build_shift_register(6)
        population = get_fault_model("mbu:4").population(shift, 5)
        assert len(population) == (6 - 4 + 1) * 5
        for fault in population:
            flips = fault.flip_flops()
            assert len(flips) == 4
            assert max(flips) < 6

    def test_mbu_wider_than_circuit_rejected(self):
        toggle = build_toggle()
        with pytest.raises(CampaignError, match="cannot inject"):
            get_fault_model("mbu:2").population(toggle, 4)


class TestFaultProtocol:
    def test_seu_is_transient_single_flip(self):
        fault = SeuFault(cycle=3, flop_index=1)
        assert fault.flip_flops() == (1,)
        assert fault.force_value() is None
        assert not fault.persistent
        assert fault.force_events(10) == []

    def test_stuck_at_forces_from_onset(self):
        fault = StuckAtFault(cycle=4, flop_index=2, value=1)
        assert fault.persistent
        assert fault.flip_flops() == ()
        assert fault.force_value() == 1
        assert not fault.force_active(3)
        assert fault.force_active(4) and fault.force_active(99)
        assert fault.force_events(10) == [(4, True)]
        assert fault.apply_force(0b000, 5) == 0b100
        assert fault.apply_force(0b111, 3) == 0b111  # inactive before onset

    def test_intermittent_duty_pattern(self):
        fault = IntermittentFault(
            cycle=2, flop_index=0, value=0, period=4, duty=2
        )
        active = [cycle for cycle in range(12) if fault.force_active(cycle)]
        assert active == [2, 3, 6, 7, 10, 11]
        events = fault.force_events(12)
        assert events[0] == (2, True)
        assert (4, False) in events and (6, True) in events
        assert fault.apply_force(0b1, 2) == 0b0

    def test_bad_parameters_rejected(self):
        with pytest.raises(CampaignError):
            StuckAtFault(cycle=0, flop_index=0, value=2)
        with pytest.raises(CampaignError):
            IntermittentFault(cycle=0, flop_index=0, period=1)
        with pytest.raises(CampaignError):
            MbuFault(cycle=0, flop_index=0, width=0)


class TestReplaySemantics:
    """The serial reference replay defines each model's meaning."""

    def test_replay_fault_matches_legacy_replay_for_seu(self):
        counter = build_counter()
        bench = random_testbench(counter, 14, seed=4)
        golden = run_golden(counter, bench)
        for fault in exhaustive_fault_list(counter, 14):
            generic = replay_fault(counter, bench, fault, golden)
            legacy = replay_single_fault(
                counter, bench, fault.flop_index, fault.cycle, golden
            )
            assert generic == legacy, fault.describe()

    def test_stuck_at_equal_to_golden_value_is_silent(self):
        """Forcing a flop to the value it would hold anyway leaves the
        run identical to golden: never fails, vanishes immediately."""
        shift = build_shift_register(3)
        bench = constant_testbench(shift, 10, value=0)  # all state stays 0
        fault = StuckAtFault(cycle=2, flop_index=1, value=0)
        outcome = replay_fault(shift, bench, fault)
        assert outcome["fail_cycle"] == -1
        assert outcome["vanish_cycle"] == 2

    def test_stuck_at_against_the_grain_never_vanishes(self):
        shift = build_shift_register(3)
        bench = constant_testbench(shift, 10, value=0)
        fault = StuckAtFault(cycle=2, flop_index=0, value=1)
        outcome = replay_fault(shift, bench, fault)
        # The forced 1 marches to the output and is re-forced every cycle.
        assert outcome["fail_cycle"] != -1
        assert outcome["vanish_cycle"] == -1

    def test_intermittent_release_lets_the_fault_wash_out(self):
        """After the last active burst of a 1-in-4 duty fault, a shift
        register flushes the corruption: the final suffix converges, so
        the fault vanishes even though it diverged repeatedly before."""
        shift = build_shift_register(3)
        bench = constant_testbench(shift, 16, value=0)
        fault = IntermittentFault(
            cycle=1, flop_index=2, value=1, period=8, duty=1
        )
        outcome = replay_fault(shift, bench, fault)
        # active at cycles 1 and 9; flop 2 is the last stage (output),
        # so corruption leaves the register after each burst.
        assert outcome["vanish_cycle"] >= 9

    def test_mbu_flips_all_bits_of_the_run(self):
        counter = build_counter()
        bench = random_testbench(counter, 12, seed=1)
        golden = run_golden(counter, bench)
        fault = MbuFault(cycle=0, flop_index=0, width=counter.num_ffs)
        outcome = replay_fault(counter, bench, fault, golden)
        # Flipping the whole register at cycle 0 definitely perturbs the
        # run; the exact verdict is circuit-specific, but the replay must
        # treat the fault as injected at cycle 0.
        assert outcome["fail_cycle"] >= 0 or outcome["vanish_cycle"] >= 0
