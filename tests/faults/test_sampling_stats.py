"""Statistical properties of the fault sampler.

Three property families the campaign layer depends on:

* **determinism** — the same seed draws the same sample in any process;
* **coverage** — reported confidence intervals contain the true rate at
  least about as often as their nominal level claims (checked against
  seeded synthetic binomial draws, so the test is exact-reproducible);
* **adaptive termination** — the adaptive sampler always stops, either
  at the target half-width or at the exhausted population.
"""

from collections import Counter

import pytest

from repro.errors import CampaignError
from repro.faults.classify import FaultClass
from repro.faults.model import exhaustive_fault_list
from repro.faults.sampling import (
    AdaptiveSampler,
    SampleEstimate,
    classification_estimates,
    clopper_pearson_interval,
    confidence_interval,
    draw_sample,
    sample_fault_list,
    stratified_sample_fault_list,
    wilson_interval,
)
from repro.util.rng import DeterministicRng
from tests.conftest import build_counter, build_shift_register


@pytest.fixture(scope="module")
def population():
    return exhaustive_fault_list(build_shift_register(6), 40)


class TestSamplerDeterminism:
    def test_uniform_same_seed_same_sample(self, population):
        assert sample_fault_list(population, 60, seed=7) == sample_fault_list(
            population, 60, seed=7
        )

    def test_uniform_different_seed_different_sample(self, population):
        assert sample_fault_list(population, 60, seed=7) != sample_fault_list(
            population, 60, seed=8
        )

    def test_stratified_same_seed_same_sample(self, population):
        assert stratified_sample_fault_list(
            population, 60, seed=3
        ) == stratified_sample_fault_list(population, 60, seed=3)

    def test_samples_are_sorted_distinct_subsets(self, population):
        for method in ("uniform", "stratified"):
            sample = draw_sample(population, 50, seed=1, method=method)
            assert sample == sorted(sample)
            assert len(set(sample)) == 50
            assert set(sample) <= set(population)

    def test_unknown_method_rejected(self, population):
        with pytest.raises(CampaignError, match="sampling method"):
            draw_sample(population, 10, method="psychic")


class TestStratifiedAllocation:
    def test_quotas_proportional_per_flop(self, population):
        sample = stratified_sample_fault_list(population, 60, seed=0)
        per_flop = Counter(fault.flop_index for fault in sample)
        # 6 equal strata, 60 draws -> exactly 10 each.
        assert sorted(per_flop.values()) == [10] * 6

    def test_uneven_count_spreads_remainder(self, population):
        sample = stratified_sample_fault_list(population, 62, seed=0)
        per_flop = Counter(fault.flop_index for fault in sample)
        assert sum(per_flop.values()) == 62
        assert max(per_flop.values()) - min(per_flop.values()) <= 1

    def test_every_flop_represented_in_small_samples(self, population):
        sample = stratified_sample_fault_list(population, 6, seed=5)
        assert len({fault.flop_index for fault in sample}) == 6

    def test_sample_larger_than_population_rejected(self, population):
        with pytest.raises(CampaignError):
            stratified_sample_fault_list(population, len(population) + 1)


class TestIntervals:
    def test_clopper_pearson_known_endpoints(self):
        # s=0 and s=n have closed forms: (0, 1-(a/2)^(1/n)) etc.
        low, high = clopper_pearson_interval(0, 50, confidence=0.95)
        assert low == 0.0
        assert high == pytest.approx(1 - 0.025 ** (1 / 50), abs=1e-9)
        low, high = clopper_pearson_interval(50, 50, confidence=0.95)
        assert high == 1.0
        assert low == pytest.approx(0.025 ** (1 / 50), abs=1e-9)

    def test_clopper_pearson_textbook_value(self):
        low, high = clopper_pearson_interval(5, 20, confidence=0.95)
        assert low == pytest.approx(0.0866, abs=5e-4)
        assert high == pytest.approx(0.4910, abs=5e-4)

    def test_clopper_pearson_contains_wilson(self):
        """The exact interval is conservative: it contains the Wilson
        interval for interior counts."""
        for successes, trials in ((1, 30), (10, 40), (25, 50), (59, 60)):
            exact = clopper_pearson_interval(successes, trials)
            wilson = wilson_interval(successes, trials)
            assert exact[0] <= wilson[0] + 1e-12
            assert exact[1] >= wilson[1] - 1e-12

    def test_method_dispatch_and_validation(self):
        assert confidence_interval(3, 10, method="wilson") == wilson_interval(3, 10)
        assert confidence_interval(
            3, 10, method="clopper_pearson"
        ) == clopper_pearson_interval(3, 10)
        with pytest.raises(CampaignError):
            confidence_interval(3, 10, method="gut_feeling")
        with pytest.raises(CampaignError):
            clopper_pearson_interval(5, 0)

    @pytest.mark.parametrize("method", ["wilson", "clopper_pearson"])
    @pytest.mark.parametrize("true_rate", [0.05, 0.5, 0.9])
    def test_coverage_property(self, method, true_rate):
        """Over many seeded binomial experiments, the 95% interval must
        contain the true rate in at least ~90% of them (Wilson's actual
        coverage dips slightly below nominal for some rates; Clopper-
        Pearson is conservative by construction)."""
        experiments = 200
        trials = 120
        rng = DeterministicRng(1234)
        covered = 0
        for _ in range(experiments):
            successes = sum(
                rng.bit(true_rate) for _ in range(trials)
            )
            low, high = confidence_interval(
                successes, trials, confidence=0.95, method=method
            )
            covered += low <= true_rate <= high
        assert covered / experiments >= 0.90

    def test_estimate_describe_and_half_width(self):
        estimate = SampleEstimate(successes=50, trials=100)
        low, high = estimate.interval
        assert estimate.half_width == pytest.approx((high - low) / 2)
        assert estimate.covers(0.5)
        assert "%" in estimate.describe()

    def test_classification_estimates_cover_all_classes(self):
        verdicts = (
            [FaultClass.FAILURE] * 30
            + [FaultClass.LATENT] * 10
            + [FaultClass.SILENT] * 60
        )
        estimates = classification_estimates(verdicts)
        assert set(estimates) == set(FaultClass)
        assert estimates[FaultClass.SILENT].proportion == pytest.approx(0.6)
        total = sum(e.successes for e in estimates.values())
        assert total == 100


class TestAdaptiveSampler:
    @staticmethod
    def synthetic_estimates(count):
        return {
            FaultClass.FAILURE: SampleEstimate(count // 2, count),
            FaultClass.LATENT: SampleEstimate(count // 10, count),
            FaultClass.SILENT: SampleEstimate(count - count // 2 - count // 10, count),
        }

    def test_reaches_target_and_stops(self):
        sampler = AdaptiveSampler(population=100_000, target_half_width=0.02)
        steps = 0
        while sampler.next_count(self.synthetic_estimates(sampler.count)):
            steps += 1
            assert steps < 30, "adaptive sampler failed to terminate"
        assert sampler.achieved_half_width <= 0.02
        assert not sampler.exhausted

    def test_impossible_target_terminates_at_population(self):
        sampler = AdaptiveSampler(
            population=300, target_half_width=0.0001, initial=50
        )
        steps = 0
        while sampler.next_count(self.synthetic_estimates(sampler.count)):
            steps += 1
            assert steps < 30
        assert sampler.exhausted
        assert sampler.rounds[-1][0] == 300

    def test_growth_is_geometric_and_capped(self):
        sampler = AdaptiveSampler(
            population=10_000, target_half_width=0.001, initial=100,
            growth=2.0, max_count=500,
        )
        sizes = [sampler.count]
        while sampler.next_count(self.synthetic_estimates(sampler.count)):
            sizes.append(sampler.count)
        assert sizes == [100, 200, 400, 500]

    def test_parameter_validation(self):
        with pytest.raises(CampaignError):
            AdaptiveSampler(population=0, target_half_width=0.1)
        with pytest.raises(CampaignError):
            AdaptiveSampler(population=10, target_half_width=0.6)
        with pytest.raises(CampaignError):
            AdaptiveSampler(population=10, target_half_width=0.1, growth=1.0)


class TestRunnerAdaptive:
    """End-to-end adaptive campaigns through the CampaignRunner."""

    def test_adaptive_run_terminates_and_reports(self):
        from repro.run.runner import CampaignRunner
        from repro.run.spec import CampaignSpec

        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=16, sample=10
        )
        runner = CampaignRunner()
        adaptive = runner.run_adaptive(spec, target_half_width=0.2)
        assert adaptive.rounds, "at least one round must be recorded"
        worst = max(e.half_width for e in adaptive.estimates.values())
        assert worst <= 0.2 or adaptive.exhausted
        assert adaptive.oracle.num_faults == adaptive.rounds[-1][0]

    def test_adaptive_exhausts_small_population(self):
        from repro.run.runner import CampaignRunner
        from repro.run.spec import CampaignSpec

        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=8, sample=5
        )
        adaptive = CampaignRunner().run_adaptive(
            spec, target_half_width=0.001
        )
        assert adaptive.exhausted
        assert adaptive.spec.sample is None  # final round was exhaustive

    def test_counter_based_population_sanity(self):
        # population_size through the spec agrees with the model
        from repro.run.spec import CampaignSpec

        counter = build_counter()
        spec = CampaignSpec(
            circuit="b01", technique="mask_scan", num_cycles=12,
            fault_model="stuck_at_0",
        )
        netlist = spec.build_netlist()
        assert spec.population_size(netlist) == netlist.num_ffs * 12
        assert counter.num_ffs > 0  # fixture sanity
